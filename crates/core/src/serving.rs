//! The multi-tenant serving plane: thousands of tenants, one fleet.
//!
//! [`crate::server::CloudTalkServer`] answers one query at a time over a
//! single snapshot — fine for a library, not for the provider-side
//! service the paper pitches (§4: "a CloudTalk server runs on every
//! machine"). This module turns the answer pipeline into a *plane*:
//!
//! * **Sharded snapshots** — the fleet is split into rack groups
//!   ([`ServingConfig::racks_per_shard`]); each shard owns its own
//!   [`StatusSnapshot`], refreshed on its own cadence through the shared
//!   status source (pair with an [`crate::aggregate::AggregationPlane`]
//!   for the hierarchical collection path). A slow or faulted rack only
//!   stales *its* shard; queries routed to other shards never wait on it.
//!   A query is answered against its *home shard* (the shard of its
//!   lowest mentioned in-fleet address); mentioned addresses outside the
//!   home shard fall back to the snapshot's standard pessimism for
//!   unknown hosts — they count as overloaded, exactly like hosts that
//!   never answered a gather.
//! * **Wave batching** — admitted queries are grouped into fixed
//!   *waves* of virtual time ([`ServingConfig::wave_quantum`]): wave `W`
//!   holds every accepted query with arrival in `[W·Δ, (W+1)·Δ)` and is
//!   evaluated at the wave-close instant `(W+1)·Δ`. Queries of one
//!   tenant always travel together (one worker, submission order), so a
//!   tenant's back-to-back queries see each other's reservations exactly
//!   like they would on the single server. Each worker owns a
//!   long-lived [`EvalCore`] whose `SearchWorkspace`/`DeltaEstimator`
//!   scratch is reused query after query — the steady-state search loop
//!   allocates nothing (pinned by `tests/search_alloc.rs` at the
//!   workspace layer).
//! * **Copy-on-write reservation ledger with epoch reclamation** — the
//!   single locked [`crate::reservation::ReservationTable`] is replaced
//!   by immutable [`LedgerVersion`]s behind `Arc`s. Workers *pin* the
//!   epoch they read and answer the whole wave against that frozen
//!   version plus a tenant-private overlay; the sequencer publishes new
//!   versions (a pointer swap) while workers run, and retired versions
//!   are reclaimed only once no worker pin references them. Readers
//!   never block writers: both sides touch the shared pointer for
//!   nanoseconds and do all real work on their own version.
//! * **Admission control with backpressure** — per-tenant queues are
//!   bounded ([`ServingConfig::tenant_queue_depth`]); a full queue or a
//!   plane running behind its virtual schedule by more than
//!   [`ServingConfig::max_virtual_lag`] rejects with
//!   [`ServerError::Overloaded`] carrying a `retry_after` hint. Under
//!   backlog pressure (waves larger than
//!   [`ServingConfig::shed_wave_backlog`]) the plane *sheds load* by
//!   forcing the O(max(m, n·p)) heuristic backend for the whole wave —
//!   reported per answer in [`crate::server::Provenance::shed`], never
//!   silently.
//!
//! # Virtual time
//!
//! The plane schedules in *virtual* (simulated) time, consistent with
//! the rest of the repo: each query costs
//! [`ServingConfig::service_time`] of modelled worker time (paper §5.1:
//! ~0.45 ms parse + evaluate), workers drain their assigned tenant
//! groups sequentially, and a query's reported latency is its virtual
//! completion minus its arrival. Real `std::thread::scope` threads do
//! the actual evaluation work — the virtual clock decides *scheduling*
//! (which worker, what completion time), not *results*. This is what
//! lets the `qps_storm` bench measure 1→8 worker scaling on any host,
//! including single-core CI runners.
//!
//! # Determinism
//!
//! Answers are bit-identical for a given `(seed, tenant, seq)` at any
//! worker count because every input to an answer is worker-count
//! independent:
//!
//! * wave membership comes from arrival timestamps, not from when a
//!   thread got scheduled;
//! * the visible reservation set is the published ledger version at wave
//!   close (reservations from strictly earlier waves, merged with
//!   commutative max-expiry) plus the tenant's own same-wave overlay —
//!   never another tenant's same-wave reservations;
//! * per-query sampling randomness is a dedicated
//!   [`desim::rng::stream_rng`] stream keyed by `(tenant, seq)`;
//! * shedding is a per-wave decision derived from wave *size* (open-loop
//!   arrivals), not from thread timing.
//!
//! Mid-wave ledger publications are restricted to *purges* of entries
//! that expired before the wave-close instant — invisible to every
//! wave query, whose reservation checks all evaluate at wave close.
//!
//! # Epoch reclamation safety
//!
//! A retired [`LedgerVersion`] with epoch `e` is freed only when no
//! worker pin equals `e`. Workers pin before the version pointer can
//! advance past them (pin and publish both happen on the sequencer
//! thread, pins strictly before that wave's publications) and unpin only
//! after their last read, so a freed version is unreachable. Conflicts
//! (a reservation lost or shortened by a merge) are checked on every
//! publication and counted in [`LedgerStats::conflicts`] — the invariant
//! tests assert the count stays zero.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cloudtalk_lang::problem::{Address, Problem, Value};
use desim::rng::{derive_seed, stream_rng, DetRng};
use desim::{SimDuration, SimTime};
use obs::{
    CounterId, FlightRecorder, GaugeId, HistogramId, MetricsRegistry, PostmortemBundle,
    QueryRecord, RecorderCfg, RingRecorder, RingSpec, SloEvent, SloEventKind, SloSpec, SloTracker,
    StitchedTrace, Trace, TraceCtx, TraceReport, TraceSampler, WindowHub,
};

use crate::aggregate::{FleetLayout, RackId};
use crate::qcache::{CacheStats, SharedCache, SharedMap};
use crate::server::{
    sample_within_budget, Answer, DegradationRung, EvalCore, ServerConfig, ServerError,
    StatusSnapshot,
};
use crate::status::StatusSource;

/// A tenant of the serving plane. Tenants are the unit of queue
/// bounding, of same-wave reservation visibility, and of worker
/// affinity within a wave.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Serving-plane configuration.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Per-worker evaluation configuration (backend, degradation ladder,
    /// reservation hold, transport, observability).
    pub server: ServerConfig,
    /// Worker count (≥ 1): virtual scheduling slots *and* real threads.
    pub workers: usize,
    /// Wave quantum Δ: wave `W` covers arrivals in `[W·Δ, (W+1)·Δ)` and
    /// is evaluated at `(W+1)·Δ`.
    pub wave_quantum: SimDuration,
    /// Maximum queries a tenant may have queued (submitted, wave not yet
    /// processed); further submissions are rejected with
    /// [`ServerError::Overloaded`].
    pub tenant_queue_depth: usize,
    /// Wave size above which the whole wave is answered by the heuristic
    /// backend (load shedding; reported in
    /// [`crate::server::Provenance::shed`]).
    pub shed_wave_backlog: usize,
    /// Admission bound on the plane's virtual schedule lag: when workers
    /// are running this far behind the wave clock, new submissions are
    /// rejected with `retry_after` = the current lag.
    pub max_virtual_lag: SimDuration,
    /// Racks per snapshot shard (≥ 1).
    pub racks_per_shard: usize,
    /// Per-shard snapshot refresh interval.
    pub snapshot_refresh: SimDuration,
    /// Modelled per-query worker time for virtual scheduling (§5.1:
    /// ~0.45 ms to parse and evaluate one query).
    pub service_time: SimDuration,
    /// Modelled worker time for a query answered from the answer cache:
    /// parse + key + replay, no search. Capacity gains from caching come
    /// from this being much smaller than [`ServingConfig::service_time`];
    /// answers themselves are bit-identical either way.
    pub hit_service_time: SimDuration,
    /// Root seed for per-query sampling streams and shard gather
    /// transport randomness.
    pub seed: u64,
    /// Continuous-telemetry configuration (off by default). Telemetry
    /// never touches answers: with identical seeds and schedules the
    /// plane produces bit-identical results whether it is on or off.
    pub telemetry: TelemetryConfig,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            server: ServerConfig::default(),
            workers: 1,
            wave_quantum: SimDuration::from_millis(5),
            tenant_queue_depth: 64,
            shed_wave_backlog: 512,
            max_virtual_lag: SimDuration::from_millis(100),
            racks_per_shard: 4,
            snapshot_refresh: SimDuration::from_millis(50),
            service_time: SimDuration::from_micros(450),
            hit_service_time: SimDuration::from_micros(100),
            seed: 0,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// Continuous-telemetry configuration: windowed time-series metrics,
/// SLO tracking, deterministic trace sampling, and the flight recorder.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Master switch. Off: no rings are allocated and the wave path does
    /// no telemetry work at all.
    pub enabled: bool,
    /// Width of one telemetry window (time-series bucket).
    pub window: SimDuration,
    /// Per-worker ring depth in windows; also bounds how far completions
    /// may lag the wave clock before being drop-counted.
    pub ring_windows: usize,
    /// Tenant classes (label dimension): a tenant belongs to class
    /// `tenant.0 % tenant_classes`.
    pub tenant_classes: usize,
    /// Trace sampling rate: keep roughly 1 query in `sample_every`
    /// (0 disables sampling, 1 samples everything). The sampled set is a
    /// pure hash of `(seed, tenant, seq)` — identical at any worker
    /// count.
    pub sample_every: u64,
    /// Declarative SLOs evaluated against every finalised window.
    pub slos: Vec<SloSpec>,
    /// Sliding horizon (in evaluated windows) for SLO burn rates.
    pub slo_horizon: usize,
    /// Flight-recorder ring capacities.
    pub recorder: RecorderCfg,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            window: SimDuration::from_millis(20),
            ring_windows: 64,
            tenant_classes: 4,
            sample_every: 64,
            slos: Vec::new(),
            slo_horizon: 60,
            recorder: RecorderCfg::default(),
        }
    }
}

impl TelemetryConfig {
    /// An enabled config with the default shape — callers then tune
    /// SLOs and sampling.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        }
    }
}

/// One processed query, in wave → tenant → submission order.
#[derive(Debug)]
pub struct CompletedQuery {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The tenant-local submission sequence number (assigned by
    /// [`ServingPlane::submit`], stable across runs and worker counts).
    pub seq: u64,
    /// The wave that evaluated the query.
    pub wave: u64,
    /// The virtual worker that evaluated the query (worker-count
    /// dependent, unlike the answer itself).
    pub worker: usize,
    /// Virtual arrival time (as clamped by admission).
    pub arrival: SimTime,
    /// Virtual completion time under the modelled service schedule.
    pub completion: SimTime,
    /// Whether this query's wave was load-shed to the heuristic backend.
    pub shed: bool,
    /// The answer (bit-identical across worker counts) or the per-query
    /// failure.
    pub result: Result<Answer, ServerError>,
    /// The trace context minted at admission when this query was sampled
    /// for end-to-end tracing (`None` when telemetry or sampling is off).
    /// The sampled set and the trace ids are pure functions of
    /// `(seed, tenant, seq)` — identical at any worker count.
    pub trace: Option<TraceCtx>,
    /// Epoch of the shard snapshot this query was answered against
    /// (stitches the query to its collector gather).
    pub snapshot_epoch: u64,
}

/// One immutable published state of the reservation ledger.
///
/// Entries are strictly sorted by address with max-merged expiries; a
/// version never changes after publication — updates build a new version
/// and swap the shared pointer.
#[derive(Debug)]
pub struct LedgerVersion {
    epoch: u64,
    entries: Vec<(Address, SimTime)>,
}

impl LedgerVersion {
    /// The version's epoch (0 = the empty initial version).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The reservation entries, strictly sorted by address.
    pub fn entries(&self) -> &[(Address, SimTime)] {
        &self.entries
    }

    /// Whether `addr` is reserved at `now` in this version.
    pub fn is_reserved(&self, addr: Address, now: SimTime) -> bool {
        self.entries
            .binary_search_by_key(&addr.0, |e| e.0 .0)
            .map(|i| self.entries[i].1 > now)
            .unwrap_or(false)
    }
}

/// Observable state of the copy-on-write reservation ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LedgerStats {
    /// Epoch of the currently published version.
    pub epoch: u64,
    /// Live reservation entries in the current version.
    pub live_entries: usize,
    /// Retired versions not yet reclaimed (still pinned, or awaiting the
    /// next reclamation pass).
    pub retired_versions: usize,
    /// Retired versions reclaimed so far.
    pub reclaimed: u64,
    /// Same-wave reservations of one address by *different* tenants
    /// (merged commutatively by max expiry — counted, not a conflict).
    pub collisions: u64,
    /// Lost or shortened reservations detected at publication — an
    /// invariant violation. Always 0 in a correct plane.
    pub conflicts: u64,
}

/// Pin sentinel: the worker holds no version.
const UNPINNED: u64 = u64::MAX;

/// The copy-on-write reservation ledger (see the module docs for the
/// epoch-reclamation protocol).
struct ReservationLedger {
    current: Mutex<Arc<LedgerVersion>>,
    retired: Mutex<Vec<Arc<LedgerVersion>>>,
    pins: Vec<AtomicU64>,
    reclaimed: AtomicU64,
    collisions: AtomicU64,
    conflicts: AtomicU64,
}

impl ReservationLedger {
    fn new(workers: usize) -> Self {
        ReservationLedger {
            current: Mutex::new(Arc::new(LedgerVersion {
                epoch: 0,
                entries: Vec::new(),
            })),
            retired: Mutex::new(Vec::new()),
            pins: (0..workers).map(|_| AtomicU64::new(UNPINNED)).collect(),
            reclaimed: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
        }
    }

    /// The currently published version.
    fn current(&self) -> Arc<LedgerVersion> {
        Arc::clone(&self.current.lock().expect("ledger lock"))
    }

    /// Pins `worker` to the current version and returns it. The pin
    /// keeps the version (and anything retired at its epoch) from being
    /// reclaimed until [`ReservationLedger::unpin`].
    fn pin(&self, worker: usize) -> Arc<LedgerVersion> {
        let guard = self.current.lock().expect("ledger lock");
        let v = Arc::clone(&guard);
        self.pins[worker].store(v.epoch, Ordering::SeqCst);
        v
    }

    fn unpin(&self, worker: usize) {
        self.pins[worker].store(UNPINNED, Ordering::SeqCst);
    }

    /// Publishes `entries` as the next epoch; the previous version moves
    /// to the retired list until no pin references it.
    fn publish(&self, entries: Vec<(Address, SimTime)>) -> u64 {
        let mut cur = self.current.lock().expect("ledger lock");
        let next = Arc::new(LedgerVersion {
            epoch: cur.epoch + 1,
            entries,
        });
        let epoch = next.epoch;
        let old = std::mem::replace(&mut *cur, next);
        drop(cur);
        self.retired.lock().expect("ledger lock").push(old);
        epoch
    }

    /// Publishes a purged version when anything has expired by `now`.
    /// Safe mid-wave: entries expired before the wave-close instant are
    /// invisible to every wave query (all reservation checks evaluate at
    /// wave close), so answers are unaffected.
    fn publish_purged(&self, now: SimTime) -> bool {
        let cur = self.current();
        if cur.entries.iter().all(|&(_, e)| e > now) {
            return false;
        }
        let entries = cur
            .entries
            .iter()
            .copied()
            .filter(|&(_, e)| e > now)
            .collect();
        self.publish(entries);
        true
    }

    /// Frees retired versions no pin references. Returns how many.
    fn reclaim(&self) -> usize {
        let mut retired = self.retired.lock().expect("ledger lock");
        let before = retired.len();
        retired.retain(|v| {
            self.pins
                .iter()
                .any(|p| p.load(Ordering::SeqCst) == v.epoch)
        });
        let freed = before - retired.len();
        self.reclaimed.fetch_add(freed as u64, Ordering::Relaxed);
        freed
    }

    fn stats(&self) -> LedgerStats {
        let cur = self.current();
        LedgerStats {
            epoch: cur.epoch,
            live_entries: cur.entries.len(),
            retired_versions: self.retired.lock().expect("ledger lock").len(),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
        }
    }
}

/// A submitted, not-yet-processed query.
struct Pending {
    tenant: TenantId,
    seq: u64,
    arrival: SimTime,
    problem: Problem,
    trace: Option<TraceCtx>,
}

/// A wave member with its routed shard snapshot attached.
struct WaveItem {
    seq: u64,
    arrival: SimTime,
    problem: Problem,
    snapshot: StatusSnapshot,
    shard: usize,
    trace: Option<TraceCtx>,
}

/// One tenant's queries within a wave. Completion times are computed by
/// the worker as it drains the group: each query advances the worker's
/// virtual cursor by the hit or miss service time.
struct Group {
    tenant: TenantId,
    items: Vec<WaveItem>,
}

/// A worker's finished tenant group: the completions and the tenant's
/// reservation overlay to merge into the ledger.
struct GroupDone {
    tenant: TenantId,
    overlay: Vec<(Address, SimTime)>,
    completed: Vec<CompletedQuery>,
}

/// One snapshot shard: a rack group's addresses, its gather RNG stream,
/// and the current snapshot.
struct Shard {
    addrs: Vec<Address>,
    rng: DetRng,
    snapshot: StatusSnapshot,
    next_refresh: SimTime,
}

/// One virtual worker: a long-lived evaluation core (scratch reused
/// across queries), its virtual availability time, and — with telemetry
/// on — its exclusively-owned time-series ring.
struct WorkerSlot {
    core: EvalCore,
    avail: SimTime,
    ring: Option<RingRecorder>,
}

/// Handles to the plane's own registered metrics.
struct ServingMetricIds {
    accepted: CounterId,
    rejected_queue: CounterId,
    rejected_lag: CounterId,
    completed: CounterId,
    query_errors: CounterId,
    waves: CounterId,
    shed_waves: CounterId,
    latency_us: HistogramId,
    lag_us: GaugeId,
    epoch: GaugeId,
    ledger_live: GaugeId,
    cache_invalidate: CounterId,
    cache_l2_entries: GaugeId,
    cache_l2_bytes: GaugeId,
    tel_windows: CounterId,
    tel_breaches: CounterId,
    tel_sampled: CounterId,
    tel_ring_dropped: GaugeId,
}

/// Virtual-latency histogram bounds, microseconds.
const LATENCY_BOUNDS_US: &[f64] = &[
    250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0, 250_000.0,
    1_000_000.0,
];

impl ServingMetricIds {
    fn register(reg: &mut MetricsRegistry) -> Self {
        ServingMetricIds {
            accepted: reg.counter("serving.accepted"),
            rejected_queue: reg.counter("serving.rejected_queue_full"),
            rejected_lag: reg.counter("serving.rejected_overload"),
            completed: reg.counter("serving.completed"),
            query_errors: reg.counter("serving.query_errors"),
            waves: reg.counter("serving.waves"),
            shed_waves: reg.counter("serving.shed_waves"),
            latency_us: reg.histogram("serving.latency_us", LATENCY_BOUNDS_US),
            lag_us: reg.gauge("serving.virtual_lag_us"),
            epoch: reg.gauge("serving.ledger_epoch"),
            ledger_live: reg.gauge("serving.ledger_live"),
            cache_invalidate: reg.counter("cache.invalidate"),
            cache_l2_entries: reg.gauge("cache.l2_entries"),
            cache_l2_bytes: reg.gauge("cache.l2_bytes"),
            tel_windows: reg.counter("telemetry.windows"),
            tel_breaches: reg.counter("telemetry.slo_breaches"),
            tel_sampled: reg.counter("telemetry.sampled_traces"),
            tel_ring_dropped: reg.gauge("telemetry.ring_dropped"),
        }
    }
}

/// One shard gather, retained so a sampled query can be stitched to the
/// collection work behind its snapshot. `epoch` is the snapshot epoch the
/// gather produced (globally unique per collector), `collector` a
/// synthesized span lane for the gather itself, and `agg` the aggregation
/// plane's own sync trace when the status source records one.
struct GatherRecord {
    shard: usize,
    epoch: u64,
    collector: TraceReport,
    agg: Option<TraceReport>,
}

/// Sequencer-side telemetry state (present only when
/// [`TelemetryConfig::enabled`]).
struct TelemetryState {
    sampler: TraceSampler,
    hub: WindowHub,
    slo: SloTracker,
    recorder: FlightRecorder,
    gathers: VecDeque<GatherRecord>,
    gather_cap: usize,
}

impl TelemetryState {
    /// Synthesizes the collector lane for one shard gather and retains it
    /// together with the source's own sync trace (the aggregator lane).
    fn record_gather(
        &mut self,
        shard: usize,
        at: SimTime,
        snapshot: &StatusSnapshot,
        agg: Option<TraceReport>,
    ) {
        let mut tr = Trace::deterministic(4);
        let root = tr.begin("gather", at);
        tr.set_arg(root, "rounds", u64::from(snapshot.rounds()));
        let s = tr.begin("status_bytes", at);
        tr.set_arg(s, "bytes", snapshot.gather_ledger().status_bytes());
        tr.end(s, at + snapshot.elapsed());
        tr.end(root, at + snapshot.elapsed());
        if self.gathers.len() == self.gather_cap {
            self.gathers.pop_front();
        }
        self.gathers.push_back(GatherRecord {
            shard,
            epoch: snapshot.epoch(),
            collector: tr.into_report(),
            agg,
        });
    }

    fn gather_for_epoch(&self, epoch: u64) -> Option<&GatherRecord> {
        self.gathers.iter().rev().find(|g| g.epoch == epoch)
    }
}

/// Telemetry counters exposed for tests and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryStats {
    /// Windows finalised so far.
    pub windows: u64,
    /// SLO breach events so far.
    pub breaches: u64,
    /// Sampled queries stitched into end-to-end traces so far.
    pub sampled_traces: u64,
    /// Ring records dropped because completion lag outran the ring span.
    pub ring_dropped: u64,
}

/// Per-query sampling RNG stream family (see the module docs).
const QUERY_STREAM_SALT: u64 = 0x51E3;
/// Shard gather RNG stream family.
const SHARD_STREAM_SALT: u64 = 0x5AAD;

/// The multi-tenant serving plane. See the module docs.
pub struct ServingPlane<S> {
    cfg: ServingConfig,
    layout: FleetLayout,
    source: S,
    collector: EvalCore,
    shards: Vec<Shard>,
    workers: Vec<WorkerSlot>,
    ledger: ReservationLedger,
    l2: SharedCache,
    pending: VecDeque<Pending>,
    tenant_open: HashMap<TenantId, usize>,
    tenant_seq: HashMap<TenantId, u64>,
    next_wave: u64,
    last_arrival: SimTime,
    virtual_lag: SimDuration,
    metrics: MetricsRegistry,
    ids: ServingMetricIds,
    telemetry: Option<TelemetryState>,
}

impl<S: StatusSource> ServingPlane<S> {
    /// Builds a plane over `layout`, collecting status through `source`.
    /// Every shard is primed with an initial gather at time zero.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.workers`, `cfg.racks_per_shard` are zero or
    /// `cfg.wave_quantum` is zero.
    pub fn new(cfg: ServingConfig, layout: FleetLayout, mut source: S) -> Self {
        assert!(cfg.workers >= 1, "the plane needs at least one worker");
        assert!(
            cfg.wave_quantum > SimDuration::ZERO,
            "wave quantum must be positive"
        );
        assert!(cfg.racks_per_shard >= 1, "shards must hold at least one rack");
        let mut metrics = MetricsRegistry::new();
        let ids = ServingMetricIds::register(&mut metrics);
        let mut collector = EvalCore::new(cfg.server.clone());
        let nshards = (layout.rack_count() + cfg.racks_per_shard - 1)
            .checked_div(cfg.racks_per_shard)
            .unwrap_or(0)
            .max(1);
        let tel_cfg = &cfg.telemetry;
        let mut telemetry = if tel_cfg.enabled {
            assert!(
                tel_cfg.window > SimDuration::ZERO,
                "telemetry window must be positive"
            );
            let spec = RingSpec {
                width: tel_cfg.window,
                buckets: tel_cfg.ring_windows.max(1),
                classes: tel_cfg.tenant_classes.max(1),
                shards: nshards,
                bounds: LATENCY_BOUNDS_US,
            };
            Some(TelemetryState {
                sampler: TraceSampler::new(cfg.seed, tel_cfg.sample_every),
                hub: WindowHub::new(spec),
                slo: SloTracker::new(tel_cfg.slos.clone(), tel_cfg.slo_horizon),
                recorder: FlightRecorder::new(tel_cfg.recorder),
                gathers: VecDeque::new(),
                gather_cap: (4 * nshards).max(8),
            })
        } else {
            None
        };
        source.advance_to(SimTime::ZERO);
        let mut shards = Vec::with_capacity(nshards);
        for si in 0..nshards {
            let lo = si * cfg.racks_per_shard;
            let hi = ((si + 1) * cfg.racks_per_shard).min(layout.rack_count());
            let mut addrs = Vec::new();
            for r in lo..hi {
                addrs.extend_from_slice(layout.hosts(RackId(r as u32)));
            }
            let mut rng = stream_rng(derive_seed(cfg.seed, SHARD_STREAM_SALT), si as u64);
            let snapshot = collector.gather_snapshot(&addrs, &mut source, &mut rng);
            if let Some(tel) = &mut telemetry {
                let agg = source.take_sync_trace();
                tel.record_gather(si, SimTime::ZERO, &snapshot, agg);
            }
            shards.push(Shard {
                addrs,
                rng,
                snapshot,
                next_refresh: SimTime::ZERO + cfg.snapshot_refresh,
            });
        }
        let workers = (0..cfg.workers)
            .map(|_| WorkerSlot {
                core: EvalCore::new(cfg.server.clone()),
                avail: SimTime::ZERO,
                ring: telemetry
                    .as_ref()
                    .map(|tel| RingRecorder::new(*tel.hub.spec())),
            })
            .collect();
        let ledger = ReservationLedger::new(cfg.workers);
        let l2 = SharedCache::new(if cfg.server.cache.enabled {
            cfg.server.cache.l2_entries
        } else {
            0
        });
        ServingPlane {
            layout,
            source,
            collector,
            shards,
            workers,
            ledger,
            l2,
            pending: VecDeque::new(),
            tenant_open: HashMap::new(),
            tenant_seq: HashMap::new(),
            next_wave: 0,
            last_arrival: SimTime::ZERO,
            virtual_lag: SimDuration::ZERO,
            metrics,
            ids,
            telemetry,
            cfg,
        }
    }

    /// The plane's configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// Number of snapshot shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Queries submitted but not yet processed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Virtual time up to which waves have been processed.
    pub fn processed_until(&self) -> SimTime {
        SimTime::ZERO + self.cfg.wave_quantum * self.next_wave
    }

    /// How far the workers' virtual schedule currently runs behind the
    /// wave clock (the admission-control signal).
    pub fn virtual_lag(&self) -> SimDuration {
        self.virtual_lag
    }

    /// The currently published reservation-ledger version.
    pub fn ledger_version(&self) -> Arc<LedgerVersion> {
        self.ledger.current()
    }

    /// Ledger observability: epoch, live entries, retirement/reclaim and
    /// collision/conflict counts.
    pub fn ledger_stats(&self) -> LedgerStats {
        self.ledger.stats()
    }

    /// The snapshot epoch of every shard, in shard order. These are the
    /// *live* epochs: answer-cache entries keyed on any other epoch are
    /// unreachable and get swept on the next publish.
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.snapshot.epoch()).collect()
    }

    /// Audit snapshot of the answer cache: per-tier hit counters summed
    /// across workers, L2 occupancy, sweep count, and the stale-hit and
    /// dead-entry counts the soundness tests pin at zero.
    pub fn cache_stats(&self) -> CacheStats {
        let mut s = CacheStats {
            invalidated: self.l2.invalidated(),
            l2_entries: self.l2.len(),
            l2_dead: self.l2.dead_entries(&self.shard_epochs()),
            ..CacheStats::default()
        };
        for w in &self.workers {
            let m = w.core.metrics();
            s.l1_hits += m.counter_named("cache.l1_hit").unwrap_or(0);
            s.l2_hits += m.counter_named("cache.l2_hit").unwrap_or(0);
            s.misses += m.counter_named("cache.miss").unwrap_or(0);
            s.stale_hits += m.counter_named("cache.stale_hit").unwrap_or(0);
        }
        s
    }

    /// Telemetry counters: finalised windows, SLO breaches, stitched
    /// traces, and ring drops. All zero when telemetry is off.
    pub fn telemetry_stats(&self) -> TelemetryStats {
        match &self.telemetry {
            Some(tel) => TelemetryStats {
                windows: tel.recorder.windows_seen(),
                breaches: tel.recorder.breaches(),
                sampled_traces: tel.recorder.traces_seen(),
                ring_dropped: self
                    .workers
                    .iter()
                    .filter_map(|w| w.ring.as_ref())
                    .map(|r| r.dropped())
                    .sum(),
            },
            None => TelemetryStats::default(),
        }
    }

    /// Finalises every telemetry window still buffered in the worker
    /// rings (including windows ahead of the wave clock reached by
    /// lagging completions) and renders the flight recorder's postmortem
    /// bundle: Chrome JSON of the stitched traces, per-window metrics
    /// text, and the SLO timeline. `None` when telemetry is off.
    ///
    /// Meant for end-of-run (or on-breach) dumps: flushed windows are
    /// final, so completions of *later* waves landing in a flushed window
    /// are drop-counted rather than merged.
    pub fn telemetry_dump(&mut self) -> Option<PostmortemBundle> {
        let tel = self.telemetry.as_mut()?;
        let mut rings: Vec<&mut RingRecorder> = self
            .workers
            .iter_mut()
            .filter_map(|w| w.ring.as_mut())
            .collect();
        let TelemetryState { hub, slo, recorder, .. } = tel;
        let mut events: Vec<SloEvent> = Vec::new();
        let mut windows = 0u64;
        hub.flush(&mut rings, |s| {
            slo.evaluate(&s, &mut events);
            recorder.push_window(s);
            windows += 1;
        });
        let breaches: u64 = events
            .iter()
            .filter(|e| e.kind == obs::SloEventKind::Breach)
            .count() as u64;
        for e in events {
            recorder.push_event(e);
        }
        self.metrics.inc(self.ids.tel_windows, windows);
        self.metrics.inc(self.ids.tel_breaches, breaches);
        Some(recorder.dump())
    }

    /// A merged snapshot of every registry on the plane: the plane's own
    /// `serving.*` metrics, the collector core's gather accounting, and
    /// each worker core's evaluation counters (summed across workers).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        out.merge_from(&self.metrics);
        out.merge_from(self.collector.metrics());
        for w in &self.workers {
            out.merge_from(w.core.metrics());
        }
        out
    }

    /// Submits a query for `tenant` arriving at `arrival` (clamped to be
    /// monotone and no earlier than the first unprocessed wave). Returns
    /// the tenant-local sequence number on acceptance.
    ///
    /// Sequence numbers advance on every submission, accepted or not, so
    /// a query's identity `(tenant, seq)` — and with it its sampling RNG
    /// stream — depends only on the submission history, never on
    /// admission outcomes.
    ///
    /// # Errors
    ///
    /// [`ServerError::Overloaded`] when the tenant's queue is full
    /// (`retry_after` = one wave quantum) or the plane's virtual lag
    /// exceeds [`ServingConfig::max_virtual_lag`] (`retry_after` = the
    /// current lag).
    pub fn submit(
        &mut self,
        tenant: TenantId,
        problem: Problem,
        arrival: SimTime,
    ) -> Result<u64, ServerError> {
        let seq = {
            let c = self.tenant_seq.entry(tenant).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let floor = SimTime::ZERO + self.cfg.wave_quantum * self.next_wave;
        let arrival = arrival.max(floor).max(self.last_arrival);
        self.last_arrival = arrival;
        if self.virtual_lag > self.cfg.max_virtual_lag {
            self.metrics.inc(self.ids.rejected_lag, 1);
            return Err(ServerError::Overloaded {
                retry_after: self.virtual_lag,
            });
        }
        let open = self.tenant_open.entry(tenant).or_insert(0);
        if *open >= self.cfg.tenant_queue_depth {
            self.metrics.inc(self.ids.rejected_queue, 1);
            return Err(ServerError::Overloaded {
                retry_after: self.cfg.wave_quantum,
            });
        }
        *open += 1;
        self.metrics.inc(self.ids.accepted, 1);
        // Sampling decision at admission: a pure hash of
        // `(seed, tenant, seq)`, so the sampled set is independent of
        // worker count and of everything scheduled so far.
        let trace = self
            .telemetry
            .as_ref()
            .and_then(|tel| tel.sampler.sample(tenant.0, seq));
        self.pending.push_back(Pending {
            tenant,
            seq,
            arrival,
            problem,
            trace,
        });
        Ok(seq)
    }

    /// Processes every wave closing at or before `until`, returning the
    /// completed queries in wave → tenant → submission order.
    pub fn run_until(&mut self, until: SimTime) -> Vec<CompletedQuery> {
        let mut out = Vec::new();
        loop {
            let close = SimTime::ZERO + self.cfg.wave_quantum * (self.next_wave + 1);
            if close > until {
                break;
            }
            let wave = self.next_wave;
            self.process_wave(wave, close, &mut out);
            self.next_wave += 1;
        }
        out
    }

    /// The shard a problem is routed to: the shard of its lowest
    /// mentioned in-fleet address (shard 0 for fleet-less problems).
    fn shard_of(&self, problem: &Problem) -> usize {
        let mut addrs = problem.mentioned_addresses();
        addrs.sort_unstable_by_key(|a| a.0);
        for a in addrs {
            if let Some(r) = self.layout.rack_of(a) {
                return (r.0 as usize / self.cfg.racks_per_shard).min(self.shards.len() - 1);
            }
        }
        0
    }

    /// Merges `fresh` worker inserts into the shared L2 and — when any
    /// shard refreshed this wave — sweeps entries keyed on dead epochs.
    /// Steady state (no fresh entries, no refresh) is a no-op.
    fn publish_cache(&mut self, fresh: Vec<crate::qcache::Entry>, refreshed: bool) {
        let live = self.shard_epochs();
        let dropped = self.l2.publish(fresh, &live, refreshed);
        if dropped > 0 {
            self.metrics.inc(self.ids.cache_invalidate, dropped);
        }
        self.metrics
            .gauge_set(self.ids.cache_l2_entries, self.l2.len() as f64);
        #[allow(clippy::cast_precision_loss)]
        self.metrics
            .gauge_set(self.ids.cache_l2_bytes, self.l2.bytes() as f64);
    }

    fn update_lag(&mut self, t_wave: SimTime) {
        let max_avail = self
            .workers
            .iter()
            .map(|s| s.avail)
            .max()
            .unwrap_or(t_wave);
        self.virtual_lag = max_avail.saturating_since(t_wave);
        self.metrics
            .gauge_set(self.ids.lag_us, self.virtual_lag.as_micros_f64());
    }

    /// Sequencer-side telemetry step at every wave close (idle waves
    /// included): stitches sampled completions into end-to-end traces,
    /// then scrapes every worker ring, finalising each window the wave
    /// clock has passed and evaluating the SLOs against it.
    ///
    /// Soundness of the scrape discipline: completions never precede
    /// their wave's close instant and wave closes are monotone, so once
    /// the clock passes a window's end no later wave can record into it —
    /// windows strictly before `window_of(t_wave)` are final.
    fn telemetry_close_wave(&mut self, t_wave: SimTime, completed: &[CompletedQuery]) {
        let ServingPlane {
            telemetry,
            workers,
            metrics,
            ids,
            cfg,
            ..
        } = self;
        let Some(tel) = telemetry.as_mut() else {
            return;
        };

        // Stitch each sampled completion: admission lane (synthesised),
        // the collector gather + aggregator sync behind its snapshot
        // epoch, the worker's service span, and the answer's own
        // evaluation spans.
        let mut sampled = 0u64;
        for c in completed {
            let Some(ctx) = c.trace else { continue };
            let mut lanes: Vec<(String, TraceReport)> = Vec::with_capacity(5);
            let mut adm = Trace::deterministic(2);
            let span = adm.begin("admit", c.arrival);
            adm.set_arg(span, "wave", c.wave);
            adm.set_arg(span, "seq", c.seq);
            adm.end(span, t_wave);
            lanes.push(("admission".to_string(), adm.into_report()));
            if let Some(g) = tel.gather_for_epoch(c.snapshot_epoch) {
                lanes.push((format!("collector/shard{}", g.shard), g.collector.clone()));
                if let Some(agg) = &g.agg {
                    lanes.push(("aggregator".to_string(), agg.clone()));
                }
            }
            let hit = matches!(&c.result, Ok(a) if a.provenance.cache_hit);
            let served = if hit {
                cfg.hit_service_time
            } else {
                cfg.service_time
            };
            let mut wk = Trace::deterministic(2);
            let span = wk.begin("serve", c.completion - served);
            wk.set_arg(span, "hit", u64::from(hit));
            wk.end(span, c.completion);
            lanes.push((format!("worker{}", c.worker), wk.into_report()));
            if let Ok(a) = &c.result {
                if !a.provenance.trace.spans.is_empty() {
                    lanes.push(("answer".to_string(), a.provenance.trace.clone()));
                }
            }
            tel.recorder.push_trace(StitchedTrace {
                trace_id: ctx.trace_id,
                tenant: c.tenant.0,
                seq: c.seq,
                wave: c.wave,
                worker: c.worker as u32,
                lanes,
            });
            sampled += 1;
        }
        if sampled > 0 {
            metrics.inc(ids.tel_sampled, sampled);
        }

        // Scrape: drain every finalised window from the worker rings into
        // the hub scratch, summarise, evaluate SLOs, and feed the flight
        // recorder. Runs on idle waves too so quiet periods still close
        // their windows.
        let until = tel.hub.spec().window_of(t_wave);
        let mut rings: Vec<&mut RingRecorder> =
            workers.iter_mut().filter_map(|w| w.ring.as_mut()).collect();
        let TelemetryState { hub, slo, recorder, .. } = tel;
        let mut events: Vec<SloEvent> = Vec::new();
        let mut windows = 0u64;
        hub.collect(&mut rings, until, |summary| {
            slo.evaluate(&summary, &mut events);
            recorder.push_window(summary);
            windows += 1;
        });
        let mut breaches = 0u64;
        for e in events {
            if e.kind == SloEventKind::Breach {
                breaches += 1;
            }
            recorder.push_event(e);
        }
        if windows > 0 {
            metrics.inc(ids.tel_windows, windows);
        }
        if breaches > 0 {
            metrics.inc(ids.tel_breaches, breaches);
        }
        let dropped: u64 = rings.iter().map(|r| r.dropped()).sum();
        #[allow(clippy::cast_precision_loss)]
        metrics.gauge_set(ids.tel_ring_dropped, dropped as f64);
    }

    /// Evaluates wave `wave` at its close instant `t_wave`.
    fn process_wave(&mut self, wave: u64, t_wave: SimTime, out: &mut Vec<CompletedQuery>) {
        self.metrics.inc(self.ids.waves, 1);

        // Wave membership: everything that arrived before the close.
        let mut members: Vec<Pending> = Vec::new();
        while self.pending.front().is_some_and(|p| p.arrival < t_wave) {
            members.push(self.pending.pop_front().expect("peeked"));
        }

        // Refresh due shards — each on its own cadence, through the
        // shared source. A slow gather only delays *this* shard's data.
        // A refresh moves the shard's snapshot epoch, which orphans every
        // answer-cache entry keyed on the old epoch. Time-aware sources
        // (an aggregation plane) are moved to the wave clock first so the
        // gather reads state as of now — unconditionally, so telemetry
        // on/off cannot change what a gather sees.
        self.source.advance_to(t_wave);
        let mut refreshed = false;
        {
            let collector = &mut self.collector;
            let source = &mut self.source;
            let telemetry = &mut self.telemetry;
            for (si, shard) in self.shards.iter_mut().enumerate() {
                if t_wave >= shard.next_refresh {
                    shard.snapshot =
                        collector.gather_snapshot(&shard.addrs, source, &mut shard.rng);
                    shard.next_refresh = t_wave + self.cfg.snapshot_refresh;
                    refreshed = true;
                    if let Some(tel) = telemetry {
                        let agg = source.take_sync_trace();
                        tel.record_gather(si, t_wave, &shard.snapshot, agg);
                    }
                }
            }
        }

        if members.is_empty() {
            // Idle wave: expire published reservations, reclaim, and
            // sweep answer-cache entries orphaned by any refresh above —
            // epochs die on refresh whether or not queries arrived.
            self.ledger.publish_purged(t_wave);
            self.ledger.reclaim();
            for slot in &mut self.workers {
                slot.avail = slot.avail.max(t_wave);
            }
            self.publish_cache(Vec::new(), refreshed);
            self.update_lag(t_wave);
            self.telemetry_close_wave(t_wave, &[]);
            return;
        }

        let shed = members.len() > self.cfg.shed_wave_backlog;
        if shed {
            self.metrics.inc(self.ids.shed_waves, 1);
        }

        // Group members by tenant (BTreeMap: deterministic tenant order;
        // FIFO within a tenant preserves submission order).
        let mut groups: BTreeMap<TenantId, Group> = BTreeMap::new();
        for p in members {
            if let Some(open) = self.tenant_open.get_mut(&p.tenant) {
                *open = open.saturating_sub(1);
            }
            let shard = self.shard_of(&p.problem);
            let snapshot = self.shards[shard].snapshot.clone();
            let g = groups.entry(p.tenant).or_insert_with(|| Group {
                tenant: p.tenant,
                items: Vec::new(),
            });
            g.items.push(WaveItem {
                seq: p.seq,
                arrival: p.arrival,
                problem: p.problem,
                snapshot,
                shard,
                trace: p.trace,
            });
        }

        // Greedy virtual scheduling: tenant groups in tenant order onto
        // the earliest-*estimated*-available worker (ties → lowest
        // index). The estimate charges every query the full miss-path
        // `service_time`; the worker computes actual completions as it
        // drains (cache hits cost `hit_service_time`), so its real
        // cursor can only run at or ahead of the estimate.
        for slot in &mut self.workers {
            slot.avail = slot.avail.max(t_wave);
        }
        let mut est: Vec<SimTime> = self.workers.iter().map(|s| s.avail).collect();
        let mut work: Vec<Vec<Group>> = (0..self.cfg.workers).map(|_| Vec::new()).collect();
        for (_, g) in groups {
            let wi = est
                .iter()
                .enumerate()
                .min_by_key(|(_, &a)| a)
                .map(|(i, _)| i)
                .expect("at least one worker");
            est[wi] += self.cfg.service_time * (g.items.len() as u64);
            work[wi].push(g);
        }

        // Execute: real threads, one per busy worker, each owning its
        // long-lived core. The sequencer thread does mid-wave ledger
        // housekeeping while workers run.
        let hold = self.cfg.server.reservation_hold;
        let seed = self.cfg.seed;
        let service = self.cfg.service_time;
        let hit_service = self.cfg.hit_service_time;
        let ledger = &self.ledger;
        // Pin the published L2 view once for the whole wave: workers
        // read this immutable map lock-free; fresh results they compute
        // are merged and republished only after the wave joins.
        let shared_view = self.l2.pin();
        let mut done: Vec<GroupDone> = Vec::new();
        let mut cursors: Vec<Option<SimTime>> = vec![None; self.workers.len()];
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.workers.len());
            for ((wi, slot), groups) in self.workers.iter_mut().enumerate().zip(work) {
                if groups.is_empty() {
                    handles.push(None);
                    continue;
                }
                // Pin before any of this wave's publications can retire
                // the version the worker is about to read.
                let pinned = ledger.pin(wi);
                let core = &mut slot.core;
                let ring = slot.ring.as_mut();
                let start = slot.avail;
                let shared = &shared_view;
                handles.push(Some(scope.spawn(move || {
                    run_groups(
                        core, ring, groups, &pinned, shared, wave, wi, t_wave, start, service,
                        hit_service, hold, shed, seed,
                    )
                })));
            }
            // Mid-wave: purge expired entries and publish. The retired
            // version stays pinned by the running workers, so reclaim
            // keeps it; this is the path that makes epoch pinning real
            // rather than ceremonial. Purged entries expired before
            // t_wave, which no wave query can observe (all reservation
            // checks evaluate at t_wave).
            ledger.publish_purged(t_wave);
            ledger.reclaim();
            for (wi, h) in handles.into_iter().enumerate() {
                if let Some(h) = h {
                    let (groups_done, cursor) = h.join().expect("serving worker panicked");
                    done.extend(groups_done);
                    cursors[wi] = Some(cursor);
                }
            }
        });
        for (slot, cursor) in self.workers.iter_mut().zip(cursors) {
            if let Some(c) = cursor {
                slot.avail = c;
            }
        }
        self.update_lag(t_wave);

        // Merge every worker's fresh L1 inserts into the shared L2 (in
        // worker-index order — deterministic first-writer-wins dedup)
        // and sweep entries orphaned by this wave's shard refreshes.
        let mut fresh = Vec::new();
        for slot in &mut self.workers {
            fresh.append(&mut slot.core.cache_take_fresh());
        }
        self.publish_cache(fresh, refreshed);

        // Merge tenant overlays into the published ledger in tenant
        // order. Max-expiry merge is commutative, so the merged version
        // is independent of which workers ran which tenants.
        done.sort_by_key(|g| g.tenant);
        let base = self.ledger.current();
        let mut entries = base.entries().to_vec();
        let mut touched: HashMap<Address, TenantId> = HashMap::new();
        let mut requested: Vec<(Address, SimTime)> = Vec::new();
        for g in &done {
            for &(addr, until) in &g.overlay {
                requested.push((addr, until));
                if let Some(prev) = touched.insert(addr, g.tenant) {
                    if prev != g.tenant {
                        self.ledger.collisions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                match entries.binary_search_by_key(&addr.0, |e| e.0 .0) {
                    Ok(i) => {
                        if entries[i].1 < until {
                            entries[i].1 = until;
                        }
                    }
                    Err(i) => entries.insert(i, (addr, until)),
                }
            }
        }
        if !requested.is_empty() {
            self.ledger.publish(entries);
            // Publication invariant: strictly sorted, nothing lost or
            // shortened. A violation is a ledger conflict.
            let cur = self.ledger.current();
            let sorted_ok = cur.entries().windows(2).all(|w| w[0].0 .0 < w[1].0 .0);
            let lost = requested.iter().any(|&(a, u)| {
                !cur.entries().iter().any(|&(x, e)| x == a && e >= u)
            });
            if !sorted_ok || lost {
                self.ledger.conflicts.fetch_add(1, Ordering::Relaxed);
            }
        }
        for wi in 0..self.workers.len() {
            self.ledger.unpin(wi);
        }
        self.ledger.reclaim();

        // Completions in deterministic (tenant, seq) order.
        let mut completed: Vec<CompletedQuery> =
            done.into_iter().flat_map(|g| g.completed).collect();
        completed.sort_by_key(|c| (c.tenant, c.seq));
        for c in &completed {
            self.metrics.inc(self.ids.completed, 1);
            if c.result.is_err() {
                self.metrics.inc(self.ids.query_errors, 1);
            }
            self.metrics.observe(
                self.ids.latency_us,
                (c.completion - c.arrival).as_micros_f64(),
            );
        }
        let stats = self.ledger.stats();
        self.metrics.gauge_set(self.ids.epoch, stats.epoch as f64);
        self.metrics
            .gauge_set(self.ids.ledger_live, stats.live_entries as f64);
        self.telemetry_close_wave(t_wave, &completed);
        out.append(&mut completed);
    }
}

/// Evaluates a worker's assigned tenant groups for one wave, advancing
/// the worker's virtual cursor from `start` as it goes (hits cost
/// `hit_service`, everything else `service`) and returning the final
/// cursor. *Answers* stay pure with respect to scheduling — they depend
/// only on the query identities, the pinned ledger version, the pinned
/// L2 cache view, the shard snapshots and the shed flag; the cursor
/// feeds completion times, which (like `worker`) are scheduling facts.
#[allow(clippy::too_many_arguments)]
fn run_groups(
    core: &mut EvalCore,
    mut ring: Option<&mut RingRecorder>,
    groups: Vec<Group>,
    pinned: &LedgerVersion,
    shared: &SharedMap,
    wave: u64,
    worker: usize,
    t_wave: SimTime,
    start: SimTime,
    service: SimDuration,
    hit_service: SimDuration,
    hold: Option<SimDuration>,
    shed: bool,
    seed: u64,
) -> (Vec<GroupDone>, SimTime) {
    let root = derive_seed(seed, QUERY_STREAM_SALT);
    let mut out = Vec::with_capacity(groups.len());
    let mut cursor = start;
    for g in groups {
        let Group { tenant, items } = g;
        let mut overlay: Vec<(Address, SimTime)> = Vec::new();
        let mut completed = Vec::with_capacity(items.len());
        for item in items {
            // Per-query RNG stream: identity-keyed, schedule-independent.
            let mut rng = stream_rng(root, derive_seed(u64::from(tenant.0), item.seq));
            let (working, sampled) =
                sample_within_budget(&item.problem, core.cfg().sample_budget, &mut rng);
            let result = {
                // Visibility: published prior-wave reservations plus this
                // tenant's own same-wave overlay.
                let pred = |a: Address| {
                    overlay.iter().any(|&(x, e)| x == a && e > t_wave)
                        || pinned.is_reserved(a, t_wave)
                };
                let pred_ref: Option<&dyn Fn(Address) -> bool> =
                    if hold.is_some() { Some(&pred) } else { None };
                core.answer_snapshot(
                    &working,
                    &item.snapshot,
                    t_wave,
                    sampled,
                    pred_ref,
                    shed,
                    Some(shared),
                )
            };
            let hit = matches!(&result, Ok(a) if a.provenance.cache_hit);
            cursor += if hit { hit_service } else { service };
            let completion = cursor;
            if let (Ok(a), Some(h)) = (&result, hold) {
                let until = t_wave + h;
                for v in &a.binding {
                    if let Value::Addr(addr) = v {
                        match overlay.iter_mut().find(|e| e.0 == *addr) {
                            Some(e) => {
                                if e.1 < until {
                                    e.1 = until;
                                }
                            }
                            None => overlay.push((*addr, until)),
                        }
                    }
                }
            }
            // Telemetry tap: record into this worker's exclusively-owned
            // ring (lock-free by ownership; the sequencer drains it only
            // between waves). Never touches the answer.
            if let Some(ring) = ring.as_deref_mut() {
                let spec = *ring.spec();
                let rec = QueryRecord {
                    class: tenant.0 as usize % spec.classes,
                    shard: item.shard,
                    latency_us: (completion - item.arrival).as_micros_f64(),
                    error: result.is_err(),
                    shed,
                    hit,
                    rung: match &result {
                        Ok(a) => match a.provenance.rung {
                            DegradationRung::Full => 0,
                            DegradationRung::FreshSubset => 1,
                            DegradationRung::AssumeBusy => 2,
                        },
                        Err(_) => 2,
                    },
                };
                ring.record(completion, &rec);
            }
            let snapshot_epoch = item.snapshot.epoch();
            completed.push(CompletedQuery {
                tenant,
                seq: item.seq,
                wave,
                worker,
                arrival: item.arrival,
                completion,
                shed,
                result,
                trace: item.trace,
                snapshot_epoch,
            });
        }
        out.push(GroupDone {
            tenant,
            overlay,
            completed,
        });
    }
    (out, cursor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::TableStatusSource;
    use cloudtalk_lang::builder::hdfs_write_query;
    use estimator::HostState;

    /// 4 racks × 4 hosts, addresses 1..=16, all idle.
    fn fleet() -> (FleetLayout, TableStatusSource) {
        let addrs: Vec<Address> = (1..=16).map(Address).collect();
        let layout = FleetLayout::uniform(&addrs, 4);
        let mut src = TableStatusSource::new();
        for &a in &addrs {
            src.set(a, HostState::gbps_idle());
        }
        (layout, src)
    }

    fn rack_query(rack: u32) -> Problem {
        let base = rack * 4 + 1;
        let nodes: Vec<Address> = (base..base + 4).map(Address).collect();
        hdfs_write_query(Address(100 + rack), &nodes, 2, 1e6)
            .resolve()
            .unwrap()
    }

    fn cfg(workers: usize) -> ServingConfig {
        ServingConfig {
            workers,
            racks_per_shard: 2,
            wave_quantum: SimDuration::from_millis(5),
            ..ServingConfig::default()
        }
    }

    #[test]
    fn plane_answers_submitted_queries() {
        let (layout, src) = fleet();
        let mut plane = ServingPlane::new(cfg(2), layout, src);
        assert_eq!(plane.shard_count(), 2);
        for t in 0..3u32 {
            plane
                .submit(TenantId(t), rack_query(t), SimTime::ZERO)
                .unwrap();
        }
        let done = plane.run_until(SimTime::from_secs_f64(0.01));
        assert_eq!(done.len(), 3);
        for c in &done {
            let a = c.result.as_ref().unwrap();
            assert!(!a.binding.is_empty());
            assert!(!a.provenance.shed);
        }
        let m = plane.metrics();
        assert_eq!(m.counter_named("serving.accepted"), Some(3));
        assert_eq!(m.counter_named("serving.completed"), Some(3));
        assert_eq!(m.counter_named("server.queries_answered"), Some(3));
        assert!(m.histograms().any(|(n, h)| n == "serving.latency_us" && h.total() == 3));
    }

    #[test]
    fn answers_bit_identical_across_worker_counts() {
        let runs: Vec<Vec<CompletedQuery>> = [1usize, 2, 8]
            .iter()
            .map(|&w| {
                let (layout, src) = fleet();
                let mut plane = ServingPlane::new(cfg(w), layout, src);
                for t in 0..4u32 {
                    for q in 0..3u64 {
                        let at = SimTime::ZERO
                            + SimDuration::from_millis(2 * q + u64::from(t) % 2);
                        plane.submit(TenantId(t), rack_query(t), at).unwrap();
                    }
                }
                let mut done = plane.run_until(SimTime::from_secs_f64(0.05));
                done.sort_by_key(|c| (c.tenant, c.seq));
                done
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(runs[0].len(), other.len());
            for (a, b) in runs[0].iter().zip(other) {
                assert_eq!((a.tenant, a.seq, a.wave), (b.tenant, b.seq, b.wave));
                assert_eq!(
                    a.result.as_ref().unwrap(),
                    b.result.as_ref().unwrap(),
                    "answer differs for ({}, {})",
                    a.tenant,
                    a.seq
                );
            }
        }
    }

    #[test]
    fn tenant_queue_is_bounded() {
        let (layout, src) = fleet();
        let mut plane = ServingPlane::new(
            ServingConfig {
                tenant_queue_depth: 2,
                ..cfg(1)
            },
            layout,
            src,
        );
        let t = TenantId(0);
        plane.submit(t, rack_query(0), SimTime::ZERO).unwrap();
        plane.submit(t, rack_query(0), SimTime::ZERO).unwrap();
        let err = plane.submit(t, rack_query(0), SimTime::ZERO).unwrap_err();
        assert!(matches!(err, ServerError::Overloaded { retry_after } if retry_after > SimDuration::ZERO));
        assert_eq!(plane.pending_len(), 2);
        // Processing the wave frees the queue.
        plane.run_until(SimTime::from_secs_f64(0.01));
        plane.submit(t, rack_query(0), SimTime::from_secs_f64(0.01)).unwrap();
    }

    #[test]
    fn shed_waves_force_heuristic_and_report_it() {
        let (layout, src) = fleet();
        let mut plane = ServingPlane::new(
            ServingConfig {
                shed_wave_backlog: 0,
                ..cfg(2)
            },
            layout,
            src,
        );
        plane.submit(TenantId(0), rack_query(0), SimTime::ZERO).unwrap();
        let done = plane.run_until(SimTime::from_secs_f64(0.01));
        assert!(done[0].shed);
        let a = done[0].result.as_ref().unwrap();
        assert!(a.provenance.shed);
        assert_eq!(a.provenance.backend, crate::server::Backend::Heuristic);
        assert_eq!(plane.metrics().counter_named("serving.shed_waves"), Some(1));
        assert_eq!(plane.metrics().counter_named("server.shed"), Some(1));
    }

    #[test]
    fn ledger_epochs_advance_and_reclaim() {
        let (layout, src) = fleet();
        let mut plane = ServingPlane::new(cfg(2), layout, src);
        plane.submit(TenantId(0), rack_query(0), SimTime::ZERO).unwrap();
        plane.run_until(SimTime::from_secs_f64(0.01));
        let s1 = plane.ledger_stats();
        assert!(s1.epoch >= 1, "reservations published: {s1:?}");
        assert!(s1.live_entries > 0);
        assert_eq!(s1.conflicts, 0);
        assert_eq!(s1.retired_versions, 0, "no pins → everything reclaimed");
        // Entries strictly sorted by address.
        let v = plane.ledger_version();
        assert!(v.entries().windows(2).all(|w| w[0].0 .0 < w[1].0 .0));
        // The 300 ms hold expires; a later idle wave purges it.
        plane.run_until(SimTime::from_secs_f64(0.5));
        let s2 = plane.ledger_stats();
        assert_eq!(s2.live_entries, 0, "{s2:?}");
        assert!(s2.reclaimed >= s1.reclaimed);
        assert_eq!(s2.conflicts, 0);
    }

    #[test]
    fn ledger_pins_block_reclaim_until_released() {
        let ledger = ReservationLedger::new(2);
        let v0 = ledger.pin(0);
        assert_eq!(v0.epoch(), 0);
        ledger.publish(vec![(Address(1), SimTime::from_secs_f64(1.0))]);
        ledger.reclaim();
        assert_eq!(ledger.stats().retired_versions, 1, "epoch 0 still pinned");
        ledger.unpin(0);
        ledger.reclaim();
        let s = ledger.stats();
        assert_eq!(s.retired_versions, 0);
        assert_eq!(s.reclaimed, 1);
        assert_eq!(s.epoch, 1);
        drop(v0);
    }

    fn telemetry_cfg(workers: usize, sample_every: u64, slos: Vec<obs::SloSpec>) -> ServingConfig {
        ServingConfig {
            telemetry: TelemetryConfig {
                sample_every,
                slos,
                window: SimDuration::from_millis(10),
                ..TelemetryConfig::enabled()
            },
            ..cfg(workers)
        }
    }

    #[test]
    fn telemetry_windows_slos_and_stitched_traces() {
        // Every wave-scheduled query has virtual latency ≥ the wave
        // quantum (5 ms), so a 100 µs p99 SLO must breach.
        let (layout, src) = fleet();
        let slos = vec![obs::SloSpec::p99_latency_us(100.0)];
        let mut plane = ServingPlane::new(telemetry_cfg(2, 1, slos), layout, src);
        for t in 0..4u32 {
            for q in 0..4u64 {
                let at = SimTime::ZERO + SimDuration::from_millis(3 * q);
                plane.submit(TenantId(t), rack_query(t), at).unwrap();
            }
        }
        let done = plane.run_until(SimTime::from_secs_f64(0.1));
        assert_eq!(done.len(), 16);
        assert!(
            done.iter().all(|c| c.trace.is_some()),
            "sample_every=1 samples every query"
        );

        let bundle = plane.telemetry_dump().expect("telemetry is on");
        let stats = plane.telemetry_stats();
        assert!(stats.windows > 0, "{stats:?}");
        assert_eq!(stats.sampled_traces, 16, "{stats:?}");
        assert!(stats.breaches > 0, "5ms-floor latencies vs 100µs SLO");
        assert_eq!(stats.ring_dropped, 0, "no completion outran the ring");
        assert_eq!(
            plane.metrics().counter_named("telemetry.sampled_traces"),
            Some(16)
        );

        // The stitched Chrome trace spans admission → collector → worker
        // → answer on the same timeline.
        for lane in ["admission", "collector/shard", "worker", "answer"] {
            assert!(
                bundle.chrome_json.contains(lane),
                "chrome trace missing lane {lane}"
            );
        }
        assert!(bundle.metrics_text.contains("p99_us="));
        assert!(bundle.slo_text.contains("BREACH"), "{}", bundle.slo_text);
    }

    #[test]
    fn telemetry_off_is_inert_and_answers_match_on() {
        let run = |telemetry: bool| {
            let (layout, src) = fleet();
            let cfg = if telemetry {
                telemetry_cfg(2, 4, Vec::new())
            } else {
                cfg(2)
            };
            let mut plane = ServingPlane::new(cfg, layout, src);
            for t in 0..4u32 {
                for q in 0..4u64 {
                    let at = SimTime::ZERO + SimDuration::from_millis(2 * q);
                    plane.submit(TenantId(t), rack_query(t), at).unwrap();
                }
            }
            let done = plane.run_until(SimTime::from_secs_f64(0.1));
            let stats = plane.telemetry_stats();
            let dump = plane.telemetry_dump();
            (done, stats, dump)
        };
        let (on, on_stats, on_dump) = run(true);
        let (off, off_stats, off_dump) = run(false);
        assert_eq!(off_stats, TelemetryStats::default());
        assert!(off_dump.is_none());
        assert!(on_dump.is_some());
        assert!(on_stats.windows > 0);
        assert!(
            on_stats.sampled_traces > 0 && on_stats.sampled_traces < 16,
            "1-in-4 sampling keeps a strict subset: {on_stats:?}"
        );
        assert_eq!(on.len(), off.len());
        for (a, b) in on.iter().zip(&off) {
            assert_eq!((a.tenant, a.seq, a.completion), (b.tenant, b.seq, b.completion));
            assert_eq!(a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert!(b.trace.is_none(), "telemetry off mints no trace contexts");
        }
    }
}
