//! Exhaustive query evaluation (paper §5.1's accuracy baseline — "we
//! contrast the results of our algorithm against an exhaustive evaluation
//! of all possible solutions"), implemented as a parallel branch-and-bound
//! search:
//!
//! * **Branch** — the first variable's candidates are split into
//!   contiguous chunks, one per worker thread ([`SearchOptions::threads`]).
//! * **Bound** — every flow whose endpoints are already fixed by the
//!   partial binding cannot finish before
//!   `start + bytes / min(rate cap, residual capacity of its resources)`;
//!   the maximum over those flows is an *admissible* lower bound on the
//!   subtree's makespan (extra flows and sharing only slow things down).
//!   Subtrees whose bound strictly exceeds the incumbent best are pruned.
//! * The incumbent makespan is shared across workers through an
//!   [`AtomicU64`] holding the `f64` bit pattern — for non-negative IEEE
//!   floats the bit order equals the numeric order, so `fetch_min` on the
//!   bits is `min` on the values.
//!
//! Candidates are estimated through one of two [`EvalStrategy`]s. The
//! seed `Scratch` path rebuilds the flow world per leaf; the `Delta` path
//! keeps a [`DeltaEstimator`] warm across siblings, re-rating only the
//! resource components whose flows moved and replaying the rest from a
//! component cache. Delta mode also tightens pruning for free: a rated
//! component whose flows are all determined by the current prefix and
//! untouched since its rating is an exact admissible lower bound
//! ([`DeltaEstimator::component_lower_bound`]), typically much sharper
//! than the single-flow residual-capacity bound.
//!
//! Determinism: pruning uses a strict `>` against the incumbent and the
//! final cross-worker reduction uses a strict `<` scanning workers in
//! first-variable order, so the winning binding (and its makespan, bit for
//! bit) is always the one the plain sequential scan would have returned
//! first — under either strategy, since delta estimates are bit-identical
//! to scratch ones (pinned by `estimator/tests/delta_props.rs`). Only
//! `evaluated` can differ — with `prune` on it depends on how fast the
//! incumbent propagates between workers and how sharp the bounds are. The
//! [`exhaustive_search`] convenience wrapper runs single-threaded with
//! pruning, which is fully deterministic.

use std::sync::atomic::{AtomicU64, Ordering};

use cloudtalk_lang::ast::{AttrKind, RefAttr};
use cloudtalk_lang::problem::{Binding, BoundEndpoint, Endpoint, ExprR, Problem};
use estimator::{
    estimate_with, resolve_sizes_into, DeltaEstimator, DeltaStats, EstimatorScratch, World,
};

/// How the search evaluates candidate bindings.
///
/// `Hash` because the strategy is part of the answer-cache key: a
/// cached result may only be replayed under the exact backend
/// configuration that produced it (even though `Scratch` and `Delta`
/// are bit-identical by contract, the cache does not rely on that).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum EvalStrategy {
    /// Rebuild the estimator world from scratch per candidate (the seed
    /// path; serves as the bit-exactness oracle for `Delta`).
    #[default]
    Scratch,
    /// Keep one rated world per worker and apply each candidate as a
    /// component-scoped delta with an undo log ([`DeltaEstimator`]).
    /// Bit-identical results; falls back to `Scratch` when the problem's
    /// attributes cannot be resolved statically (the estimator would
    /// reject every binding of such a problem anyway).
    Delta,
}

/// Outcome of an exhaustive search.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ExhaustiveResult {
    /// The best binding found.
    pub binding: Binding,
    /// Its estimated makespan, seconds.
    pub makespan: f64,
    /// Bindings evaluated (i.e. estimator calls; pruned leaves excluded).
    pub evaluated: u64,
    /// Subtrees cut by the admissible lower bound (0 with pruning off).
    /// Each cut skips a whole suffix of the binding space, so this counts
    /// pruning *decisions*, not skipped bindings.
    pub pruned_subtrees: u64,
    /// Delta-evaluation work counters, summed across workers (all zero
    /// under [`EvalStrategy::Scratch`]).
    pub delta: DeltaStats,
}

/// Errors from exhaustive evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExhaustiveError {
    /// The search space exceeds `limit` bindings.
    TooLarge {
        /// Upper bound on the number of bindings.
        space: u128,
        /// The configured limit.
        limit: u64,
    },
    /// No feasible binding exists (e.g. every candidate stalls).
    NoFeasibleBinding,
}

impl std::fmt::Display for ExhaustiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustiveError::TooLarge { space, limit } => {
                write!(f, "search space of {space} bindings exceeds limit {limit}")
            }
            ExhaustiveError::NoFeasibleBinding => write!(f, "no feasible binding"),
        }
    }
}

impl std::error::Error for ExhaustiveError {}

/// Knobs for [`exhaustive_search_with`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SearchOptions {
    /// Refuse searches whose binding space exceeds this many bindings.
    pub limit: u64,
    /// Worker threads; `0` and `1` both mean single-threaded.
    pub threads: usize,
    /// Whether to prune subtrees via the admissible lower bound.
    pub prune: bool,
    /// Candidate evaluation strategy.
    pub eval: EvalStrategy,
}

impl SearchOptions {
    /// Single-threaded, pruned, scratch-evaluated search bounded by
    /// `limit` bindings.
    pub fn new(limit: u64) -> Self {
        SearchOptions {
            limit,
            threads: 1,
            prune: true,
            eval: EvalStrategy::Scratch,
        }
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Enables or disables lower-bound pruning.
    pub fn prune(mut self, on: bool) -> Self {
        self.prune = on;
        self
    }

    /// Selects the candidate evaluation strategy.
    pub fn eval(mut self, strategy: EvalStrategy) -> Self {
        self.eval = strategy;
        self
    }
}

/// Reusable per-search state: the estimator scratch/delta worlds, the
/// bound tables and the traversal buffers. Holding one of these across
/// repeated [`exhaustive_search_in`] calls makes single-threaded searches
/// allocation-free in steady state (pinned by `tests/search_alloc.rs`).
#[derive(Debug, Default)]
pub struct SearchWorkspace {
    scratch: EstimatorScratch,
    delta: DeltaEstimator,
    bounds: Bounder,
    local: Local,
    current: Binding,
}

impl SearchWorkspace {
    /// An empty workspace; buffers grow on first use and are kept.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Exhaustively searches all bindings (respecting same-pool distinctness),
/// minimising estimated makespan. `limit` bounds the number of bindings
/// tried — the brute force is intractable for real queries, which is the
/// paper's point.
///
/// Runs single-threaded with pruning: deterministic and bit-identical to
/// the plain sequential scan (see the module docs). Use
/// [`exhaustive_search_with`] to control threading, pruning and the
/// evaluation strategy.
pub fn exhaustive_search(
    problem: &Problem,
    world: &World,
    limit: u64,
) -> Result<ExhaustiveResult, ExhaustiveError> {
    exhaustive_search_with(problem, world, &SearchOptions::new(limit))
}

/// [`exhaustive_search`] with explicit [`SearchOptions`].
pub fn exhaustive_search_with(
    problem: &Problem,
    world: &World,
    opts: &SearchOptions,
) -> Result<ExhaustiveResult, ExhaustiveError> {
    let mut ws = SearchWorkspace::new();
    let mut out = ExhaustiveResult::default();
    exhaustive_search_in(problem, world, opts, &mut ws, &mut out)?;
    Ok(out)
}

/// [`exhaustive_search_with`] writing into caller-owned buffers: `out` is
/// overwritten on success (its contents are unspecified on error) and
/// `ws` keeps every allocation for the next call. The repeated-search
/// steady state allocates nothing when `opts.threads <= 1`; worker
/// threads build their own transient workspaces.
pub fn exhaustive_search_in(
    problem: &Problem,
    world: &World,
    opts: &SearchOptions,
    ws: &mut SearchWorkspace,
    out: &mut ExhaustiveResult,
) -> Result<(), ExhaustiveError> {
    // Upper-bound the space before committing — this runs before any
    // estimator (or even bound-table) work, so a `TooLarge` query is
    // rejected in O(|vars|) no matter how pathological its flows are.
    let mut space: u128 = 1;
    for var in &problem.vars {
        space = space.saturating_mul(var.candidates.len() as u128);
        if space > opts.limit as u128 {
            return Err(ExhaustiveError::TooLarge {
                space,
                limit: opts.limit,
            });
        }
    }

    let SearchWorkspace {
        scratch,
        delta,
        bounds,
        local,
        current,
    } = ws;

    let n_vars = problem.vars.len();
    if n_vars == 0 {
        // No variables: a single empty binding.
        current.clear();
        let e = estimate_with(scratch, problem, current, world)
            .map_err(|_| ExhaustiveError::NoFeasibleBinding)?;
        out.binding.clear();
        out.makespan = e.makespan;
        out.evaluated = 1;
        out.pruned_subtrees = 0;
        out.delta = DeltaStats::default();
        return Ok(());
    }

    let have_bounds = opts.prune && bounds.build_into(problem);
    // Delta evaluation needs the same static tables the scratch estimator
    // resolves per call; when that fails every estimate would fail too,
    // so falling back to Scratch changes nothing but the error path.
    let use_delta = opts.eval == EvalStrategy::Delta && delta.reset(problem, world).is_ok();
    let incumbent = AtomicU64::new(f64::INFINITY.to_bits());
    let ctx = Ctx {
        problem,
        world,
        bounds: if have_bounds { Some(&*bounds) } else { None },
        incumbent: &incumbent,
    };

    let first = &problem.vars[0].candidates;
    let threads = opts.threads.max(1).min(first.len().max(1));
    if threads <= 1 {
        local.reset();
        if use_delta {
            search_rec_delta(ctx, delta, 0.0, local);
            local.delta = delta.stats();
        } else {
            current.clear();
            search_rec(ctx, scratch, current, 0.0, local);
        }
        return reduce_into(std::slice::from_ref(local), out);
    }

    let locals: Vec<Local> = std::thread::scope(|s| {
        // Contiguous chunks keep the first-variable order intact, so
        // scanning workers in spawn order below reproduces the
        // sequential first-found tie-break.
        let chunk = first.len() / threads;
        let extra = first.len() % threads;
        let mut lo = 0usize;
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let hi = lo + chunk + usize::from(w < extra);
            let mine = &first[lo..hi];
            lo = hi;
            handles.push(s.spawn(move || {
                let mut local = Local::default();
                if use_delta {
                    let mut de = DeltaEstimator::new(ctx.problem, ctx.world)
                        .expect("reset already succeeded on these inputs");
                    let base_lb = match ctx.bounds {
                        Some(b) => b.bound_at_depth(0, de.binding(), ctx.world, 0.0),
                        None => 0.0,
                    };
                    for &value in mine {
                        de.push(value);
                        search_rec_delta(ctx, &mut de, base_lb, &mut local);
                        de.pop();
                    }
                    local.delta = de.stats();
                } else {
                    let mut scratch = EstimatorScratch::new();
                    let mut current: Binding = Vec::with_capacity(n_vars);
                    let base_lb = match ctx.bounds {
                        Some(b) => b.bound_at_depth(0, &current, ctx.world, 0.0),
                        None => 0.0,
                    };
                    for &value in mine {
                        current.push(value);
                        search_rec(ctx, &mut scratch, &mut current, base_lb, &mut local);
                        current.pop();
                    }
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect()
    });
    reduce_into(&locals, out)
}

/// Folds per-worker results into `out`, scanning workers in first-variable
/// order with a strict `<` so ties resolve to the sequential first-found
/// winner.
fn reduce_into(locals: &[Local], out: &mut ExhaustiveResult) -> Result<(), ExhaustiveError> {
    out.evaluated = 0;
    out.pruned_subtrees = 0;
    out.delta = DeltaStats::default();
    let mut best: Option<usize> = None;
    for (k, local) in locals.iter().enumerate() {
        out.evaluated += local.evaluated;
        out.pruned_subtrees += local.pruned;
        out.delta.merge(&local.delta);
        if local.has_best && best.is_none_or(|b| local.best_makespan < locals[b].best_makespan) {
            best = Some(k);
        }
    }
    match best {
        Some(k) => {
            out.binding.clone_from(&locals[k].best_binding);
            out.makespan = locals[k].best_makespan;
            Ok(())
        }
        None => Err(ExhaustiveError::NoFeasibleBinding),
    }
}

/// Per-worker accumulation. The incumbent binding lives in a reused
/// buffer (`clone_from`) so recording a new best in steady state does not
/// allocate.
#[derive(Debug, Default)]
struct Local {
    has_best: bool,
    best_makespan: f64,
    best_binding: Binding,
    evaluated: u64,
    pruned: u64,
    delta: DeltaStats,
}

impl Local {
    fn reset(&mut self) {
        self.has_best = false;
        self.best_makespan = 0.0;
        self.best_binding.clear();
        self.evaluated = 0;
        self.pruned = 0;
        self.delta = DeltaStats::default();
    }

    /// Strict `<`: the earliest binding wins exact ties, matching the
    /// sequential scan.
    fn offer(&mut self, makespan: f64, binding: &Binding, incumbent: &AtomicU64) {
        if !self.has_best || makespan < self.best_makespan {
            self.has_best = true;
            self.best_makespan = makespan;
            self.best_binding.clone_from(binding);
            incumbent.fetch_min(makespan.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Read-only search context shared by all workers.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    problem: &'a Problem,
    world: &'a World,
    bounds: Option<&'a Bounder>,
    incumbent: &'a AtomicU64,
}

fn search_rec(
    ctx: Ctx<'_>,
    scratch: &mut EstimatorScratch,
    current: &mut Binding,
    lb: f64,
    local: &mut Local,
) {
    let depth = current.len();
    let mut lb = lb;
    if let Some(b) = ctx.bounds {
        lb = b.bound_at_depth(depth, current, ctx.world, lb);
        // Strict `>`: a subtree whose bound merely *equals* the incumbent
        // is still explored, preserving the sequential `evaluated` counts
        // on worlds full of ties and the first-found winner on exact ties.
        if lb > f64::from_bits(ctx.incumbent.load(Ordering::Relaxed)) {
            local.pruned += 1;
            return;
        }
    }
    if depth == ctx.problem.vars.len() {
        local.evaluated += 1;
        if let Ok(e) = estimate_with(scratch, ctx.problem, current, ctx.world) {
            local.offer(e.makespan, current, ctx.incumbent);
        }
        return;
    }
    let var = &ctx.problem.vars[depth];
    for &value in &var.candidates {
        if ctx.problem.distinct {
            let clash = current
                .iter()
                .enumerate()
                .any(|(j, v)| ctx.problem.vars[j].pool == var.pool && *v == value);
            if clash {
                continue;
            }
        }
        current.push(value);
        search_rec(ctx, scratch, current, lb, local);
        current.pop();
    }
}

/// The delta twin of [`search_rec`]: the partial binding lives inside the
/// [`DeltaEstimator`], descents are `push`/`pop` pairs against its undo
/// log, and leaves re-rate only the components their last move touched.
/// Pruning additionally folds in [`DeltaEstimator::component_lower_bound`]
/// — exact finish times of already-rated untouched components, admissible
/// because unbound flows can only join a component and max-min rates are
/// monotone. The strict `>` cut keeps the winner identical even though
/// the sharper bound prunes more.
fn search_rec_delta(ctx: Ctx<'_>, de: &mut DeltaEstimator, lb: f64, local: &mut Local) {
    let depth = de.depth();
    let mut lb = lb;
    if let Some(b) = ctx.bounds {
        lb = b.bound_at_depth(depth, de.binding(), ctx.world, lb);
        lb = lb.max(de.component_lower_bound());
        if lb > f64::from_bits(ctx.incumbent.load(Ordering::Relaxed)) {
            local.pruned += 1;
            return;
        }
    }
    if depth == ctx.problem.vars.len() {
        local.evaluated += 1;
        if let Ok(e) = de.estimate_summary() {
            local.offer(e.makespan, de.binding(), ctx.incumbent);
        }
        return;
    }
    let var = &ctx.problem.vars[depth];
    for &value in &var.candidates {
        if ctx.problem.distinct {
            let clash = de
                .binding()
                .iter()
                .enumerate()
                .any(|(j, v)| ctx.problem.vars[j].pool == var.pool && *v == value);
            if clash {
                continue;
            }
        }
        de.push(value);
        search_rec_delta(ctx, de, lb, local);
        de.pop();
    }
}

/// Mirror of the estimator's completion tolerances (relative `EPS` plus an
/// absolute byte slack) — the bound must never exceed what the estimator
/// can actually report, so it under-counts the bytes by the same slack.
const EST_EPS: f64 = 1e-6;
const EST_SLACK: f64 = 1e-3;

/// One flow's binding-independent bound ingredients.
#[derive(Debug)]
struct FlowLb {
    src: Endpoint,
    dst: Endpoint,
    /// `start` attribute (0 when absent).
    start: f64,
    /// Bytes the estimator must move before declaring the flow done.
    bytes: f64,
    /// Constant `rate` cap (`INFINITY` when uncapped or rate-coupled).
    cap: f64,
}

/// Admissible lower-bound machinery. `by_depth[d]` lists the flows whose
/// endpoints become fully determined once the first `d` variables are
/// bound, so each search node only scores its newly-fixed flows. Built
/// into retained buffers so rebuilding for the same problem shape is
/// allocation-free.
#[derive(Debug, Default)]
struct Bounder {
    flows: Vec<FlowLb>,
    by_depth: Vec<Vec<usize>>,
    size_memo: Vec<Option<f64>>,
    sizes: Vec<f64>,
}

impl Bounder {
    /// (Re)builds the bound tables, returning `false` when some attribute
    /// cannot be resolved statically — the estimator would reject every
    /// binding of such a problem anyway, so the search just runs unpruned.
    fn build_into(&mut self, problem: &Problem) -> bool {
        if resolve_sizes_into(problem, &mut self.size_memo, &mut self.sizes).is_err() {
            return false;
        }
        self.flows.clear();
        for v in &mut self.by_depth {
            v.clear();
        }
        self.by_depth.resize_with(problem.vars.len() + 1, Vec::new);
        for (i, flow) in problem.flows.iter().enumerate() {
            let start = match flow.attr(AttrKind::Start) {
                None => 0.0,
                Some(e) => match e.as_const() {
                    Some(v) => v.max(0.0),
                    None => return false,
                },
            };
            // Constant `transfer` offsets are initial progress; `t(f)`
            // references are pure precedence (zero initial progress).
            let initial = match flow.attr(AttrKind::Transfer) {
                None => 0.0,
                Some(e) => match e.as_const() {
                    Some(v) => v.max(0.0),
                    None => {
                        let mut only_t = true;
                        e.for_each_ref(&mut |attr, _| {
                            if attr != RefAttr::Transferred {
                                only_t = false;
                            }
                        });
                        if !only_t {
                            return false;
                        }
                        0.0
                    }
                },
            };
            let cap = match flow.attr(AttrKind::Rate) {
                None => f64::INFINITY,
                Some(e) => match e.as_const() {
                    Some(v) => v.max(0.0),
                    None => match e {
                        ExprR::Ref(RefAttr::Rate, _) => f64::INFINITY,
                        _ => return false,
                    },
                },
            };
            let remaining = (self.sizes[i] - initial).max(0.0);
            let bytes = if remaining <= EST_EPS {
                0.0
            } else {
                (remaining - self.sizes[i] * EST_EPS - EST_SLACK).max(0.0)
            };
            let depth = [flow.src, flow.dst]
                .iter()
                .filter_map(|e| e.as_var())
                .map(|v| v.0 + 1)
                .max()
                .unwrap_or(0);
            self.by_depth[depth].push(i);
            self.flows.push(FlowLb {
                src: flow.src,
                dst: flow.dst,
                start,
                bytes,
                cap,
            });
        }
        true
    }

    /// Folds the flows newly determined at `depth` into `lb`.
    fn bound_at_depth(&self, depth: usize, prefix: &Binding, world: &World, lb: f64) -> f64 {
        self.by_depth[depth]
            .iter()
            .fold(lb, |acc, &i| acc.max(self.flow_bound(i, prefix, world)))
    }

    /// Best-case finish time of flow `i` under `prefix`: its rate can
    /// never exceed the residual capacity of any resource it touches (the
    /// same resources `estimate` charges it to), nor its constant cap.
    fn flow_bound(&self, i: usize, prefix: &Binding, world: &World) -> f64 {
        let f = &self.flows[i];
        let mut rate = f.cap;
        match (f.src.bound(prefix), f.dst.bound(prefix)) {
            (BoundEndpoint::Host(a), BoundEndpoint::Host(b)) if a != b => {
                rate = rate
                    .min(world.get(a).up_free())
                    .min(world.get(b).down_free());
            }
            (BoundEndpoint::Host(a), BoundEndpoint::Disk) => {
                let s = world.get(a);
                rate = rate.min((s.disk_write_capacity - s.disk_write_used).max(0.0));
            }
            (BoundEndpoint::Disk, BoundEndpoint::Host(b)) => {
                let s = world.get(b);
                rate = rate.min((s.disk_read_capacity - s.disk_read_used).max(0.0));
            }
            (BoundEndpoint::Unknown, BoundEndpoint::Host(b)) => {
                rate = rate.min(world.get(b).down_free());
            }
            (BoundEndpoint::Host(a), BoundEndpoint::Unknown) => {
                rate = rate.min(world.get(a).up_free());
            }
            // Loopback, disk↔unknown etc. touch no shared resource.
            _ => {}
        }
        if f.bytes <= 0.0 {
            f.start
        } else if rate <= 0.0 {
            f64::INFINITY
        } else {
            f.start + f.bytes / rate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{evaluate_query, HeuristicConfig};
    use cloudtalk_lang::builder::{hdfs_read_query, hdfs_write_query};
    use cloudtalk_lang::problem::{Address, Value};
    use cloudtalk_lang::units::sizes::MB;
    use estimator::{estimate, HostState};

    fn world(loads: &[(u32, f64)]) -> World {
        let addrs: Vec<Address> = (1..=8).map(Address).collect();
        let mut w = World::uniform(&addrs, HostState::gbps_idle());
        for &(a, frac) in loads {
            w.set(
                Address(a),
                HostState::gbps_idle().with_up_load(frac).with_down_load(frac),
            );
        }
        w
    }

    #[test]
    fn finds_the_obvious_best_replica() {
        let p = hdfs_read_query(Address(1), &[Address(2), Address(3)], 256.0 * MB)
            .resolve()
            .unwrap();
        let w = world(&[(2, 0.8)]);
        let r = exhaustive_search(&p, &w, 1000).unwrap();
        assert_eq!(r.binding, vec![Value::Addr(Address(3))]);
        assert_eq!(r.evaluated, 2);
    }

    #[test]
    fn respects_distinctness() {
        let nodes: Vec<Address> = (2..6).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 64.0 * MB)
            .resolve()
            .unwrap();
        let r = exhaustive_search(&p, &world(&[]), 1000).unwrap();
        // 4·3·2 = 24 distinct bindings.
        assert_eq!(r.evaluated, 24);
        let set: std::collections::HashSet<&Value> = r.binding.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn heuristic_matches_exhaustive_on_single_variable() {
        // The paper: "our algorithm is optimal for single variable queries".
        for busy in [2u32, 3, 4] {
            let p = hdfs_read_query(
                Address(1),
                &[Address(2), Address(3), Address(4)],
                256.0 * MB,
            )
            .resolve()
            .unwrap();
            let w = world(&[(busy, 0.9)]);
            let ex = exhaustive_search(&p, &w, 1000).unwrap();
            let h = evaluate_query(&p, &w, &HeuristicConfig::default());
            let eh = estimate(&p, &h, &w).unwrap();
            assert!(
                eh.makespan <= ex.makespan * 1.0001,
                "heuristic {} vs optimal {} (busy={busy})",
                eh.makespan,
                ex.makespan
            );
        }
    }

    #[test]
    fn limit_guards_explosion() {
        let nodes: Vec<Address> = (2..34).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 64.0 * MB)
            .resolve()
            .unwrap();
        // 32^3 = 32768 > 1000.
        let err = exhaustive_search(&p, &world(&[]), 1000).unwrap_err();
        assert!(matches!(err, ExhaustiveError::TooLarge { .. }));
    }

    #[test]
    fn empty_problem_ok() {
        let p = Problem::default();
        let r = exhaustive_search(&p, &World::new(), 10).unwrap();
        assert!(r.binding.is_empty());
        assert_eq!(r.evaluated, 1);
    }

    #[test]
    fn empty_problem_same_under_all_options() {
        let p = Problem::default();
        let base = exhaustive_search(&p, &World::new(), 10).unwrap();
        for threads in [1usize, 2, 8] {
            for prune in [false, true] {
                for eval in [EvalStrategy::Scratch, EvalStrategy::Delta] {
                    let opts = SearchOptions::new(10)
                        .threads(threads)
                        .prune(prune)
                        .eval(eval);
                    let r = exhaustive_search_with(&p, &World::new(), &opts).unwrap();
                    assert_eq!(r, base);
                }
            }
        }
    }

    #[test]
    fn single_candidate_is_forced() {
        let p = hdfs_read_query(Address(1), &[Address(2)], 64.0 * MB)
            .resolve()
            .unwrap();
        for threads in [1usize, 8] {
            let opts = SearchOptions::new(1000).threads(threads);
            let r = exhaustive_search_with(&p, &world(&[]), &opts).unwrap();
            assert_eq!(r.binding, vec![Value::Addr(Address(2))]);
            assert_eq!(r.evaluated, 1);
        }
    }

    #[test]
    fn too_large_fires_before_any_estimator_work() {
        // Every host unknown → the estimator would stall on every single
        // binding. The space check must still win: the answer is TooLarge,
        // not NoFeasibleBinding, and it arrives without estimating.
        let nodes: Vec<Address> = (2..34).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 64.0 * MB)
            .resolve()
            .unwrap();
        for threads in [1usize, 8] {
            for prune in [false, true] {
                let opts = SearchOptions::new(1000).threads(threads).prune(prune);
                let err = exhaustive_search_with(&p, &World::new(), &opts).unwrap_err();
                // The guard bails at the first partial product over the
                // limit (32·32 = 1024), before looking at any flow.
                assert!(matches!(
                    err,
                    ExhaustiveError::TooLarge {
                        space: 1024,
                        limit: 1000
                    }
                ));
            }
        }
    }

    #[test]
    fn infeasible_problem_reports_no_feasible_binding() {
        let p = hdfs_read_query(Address(1), &[Address(2), Address(3)], 64.0 * MB)
            .resolve()
            .unwrap();
        // Unknown world: all hosts assumed fully loaded, every flow stalls.
        for threads in [1usize, 2] {
            for prune in [false, true] {
                for eval in [EvalStrategy::Scratch, EvalStrategy::Delta] {
                    let opts = SearchOptions::new(1000)
                        .threads(threads)
                        .prune(prune)
                        .eval(eval);
                    let err = exhaustive_search_with(&p, &World::new(), &opts).unwrap_err();
                    assert_eq!(err, ExhaustiveError::NoFeasibleBinding);
                }
            }
        }
    }

    #[test]
    fn options_agree_with_sequential_reference() {
        // Asymmetric loads so the optimum is unique and pruning has real
        // work to do.
        let nodes: Vec<Address> = (2..7).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 256.0 * MB)
            .resolve()
            .unwrap();
        let w = world(&[(2, 0.9), (3, 0.5), (4, 0.2), (6, 0.7)]);
        let reference = exhaustive_search_with(
            &p,
            &w,
            &SearchOptions::new(10_000).threads(1).prune(false),
        )
        .unwrap();
        for threads in [1usize, 2, 8] {
            for prune in [false, true] {
                for eval in [EvalStrategy::Scratch, EvalStrategy::Delta] {
                    let opts = SearchOptions::new(10_000)
                        .threads(threads)
                        .prune(prune)
                        .eval(eval);
                    let r = exhaustive_search_with(&p, &w, &opts).unwrap();
                    assert_eq!(
                        r.binding, reference.binding,
                        "threads={threads} prune={prune} eval={eval:?}"
                    );
                    assert_eq!(
                        r.makespan.to_bits(),
                        reference.makespan.to_bits(),
                        "threads={threads} prune={prune} eval={eval:?}"
                    );
                    if !prune {
                        assert_eq!(r.evaluated, reference.evaluated);
                    } else {
                        assert!(r.evaluated <= reference.evaluated);
                    }
                }
            }
        }
    }

    #[test]
    fn pruning_skips_work_on_lopsided_worlds() {
        // One heavily loaded replica among idle ones: once an all-idle
        // binding is the incumbent, every subtree routing through the busy
        // host bounds strictly above it and is skipped wholesale.
        let nodes: Vec<Address> = (2..8).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 256.0 * MB)
            .resolve()
            .unwrap();
        let w = world(&[(7, 0.95)]);
        let full = exhaustive_search_with(
            &p,
            &w,
            &SearchOptions::new(10_000).threads(1).prune(false),
        )
        .unwrap();
        let pruned =
            exhaustive_search_with(&p, &w, &SearchOptions::new(10_000).threads(1)).unwrap();
        assert_eq!(pruned.binding, full.binding);
        assert_eq!(pruned.makespan.to_bits(), full.makespan.to_bits());
        assert!(
            pruned.evaluated < full.evaluated,
            "pruned {} vs full {}",
            pruned.evaluated,
            full.evaluated
        );
        assert_eq!(full.pruned_subtrees, 0, "pruning off reports no cuts");
        assert!(
            pruned.pruned_subtrees > 0,
            "cuts must be counted when the bound fires"
        );
    }

    #[test]
    fn delta_counts_work_and_prunes_at_least_as_hard() {
        let nodes: Vec<Address> = (2..8).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 256.0 * MB)
            .resolve()
            .unwrap();
        let w = world(&[(7, 0.95)]);
        let scratch =
            exhaustive_search_with(&p, &w, &SearchOptions::new(10_000).threads(1)).unwrap();
        let delta = exhaustive_search_with(
            &p,
            &w,
            &SearchOptions::new(10_000).threads(1).eval(EvalStrategy::Delta),
        )
        .unwrap();
        assert_eq!(delta.binding, scratch.binding);
        assert_eq!(delta.makespan.to_bits(), scratch.makespan.to_bits());
        assert_eq!(
            scratch.delta,
            DeltaStats::default(),
            "scratch reports no delta work"
        );
        assert_eq!(delta.delta.estimates, delta.evaluated);
        assert!(delta.delta.components_rerated > 0);
        assert!(
            delta.evaluated <= scratch.evaluated,
            "the component bound may only tighten pruning: {} vs {}",
            delta.evaluated,
            scratch.evaluated
        );
    }

    #[test]
    fn workspace_reuse_matches_fresh_searches() {
        let nodes: Vec<Address> = (2..7).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 256.0 * MB)
            .resolve()
            .unwrap();
        let mut ws = SearchWorkspace::new();
        let mut out = ExhaustiveResult::default();
        for eval in [EvalStrategy::Delta, EvalStrategy::Scratch, EvalStrategy::Delta] {
            for run in 0..2u32 {
                let w = world(&[(2, 0.9), (3 + run, 0.5)]);
                let opts = SearchOptions::new(10_000).eval(eval);
                let fresh = exhaustive_search_with(&p, &w, &opts).unwrap();
                exhaustive_search_in(&p, &w, &opts, &mut ws, &mut out).unwrap();
                assert_eq!(out.binding, fresh.binding, "eval={eval:?} run={run}");
                assert_eq!(out.makespan.to_bits(), fresh.makespan.to_bits());
                assert_eq!(out.evaluated, fresh.evaluated);
                assert_eq!(out.delta, fresh.delta);
            }
        }
    }
}
