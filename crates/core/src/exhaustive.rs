//! Brute-force query evaluation: try every binding, score with the
//! flow-level estimator, keep the best (paper §5.1's accuracy baseline —
//! "we contrast the results of our algorithm against an exhaustive
//! evaluation of all possible solutions").

use cloudtalk_lang::problem::{Binding, Problem};
use estimator::{estimate, World};

/// Outcome of an exhaustive search.
#[derive(Clone, Debug, PartialEq)]
pub struct ExhaustiveResult {
    /// The best binding found.
    pub binding: Binding,
    /// Its estimated makespan, seconds.
    pub makespan: f64,
    /// Bindings evaluated.
    pub evaluated: u64,
}

/// Errors from exhaustive evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExhaustiveError {
    /// The search space exceeds `limit` bindings.
    TooLarge {
        /// Upper bound on the number of bindings.
        space: u128,
        /// The configured limit.
        limit: u64,
    },
    /// No feasible binding exists (e.g. every candidate stalls).
    NoFeasibleBinding,
}

impl std::fmt::Display for ExhaustiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustiveError::TooLarge { space, limit } => {
                write!(f, "search space of {space} bindings exceeds limit {limit}")
            }
            ExhaustiveError::NoFeasibleBinding => write!(f, "no feasible binding"),
        }
    }
}

impl std::error::Error for ExhaustiveError {}

/// Exhaustively searches all bindings (respecting same-pool distinctness),
/// minimising estimated makespan. `limit` bounds the number of bindings
/// tried — the brute force is intractable for real queries, which is the
/// paper's point.
pub fn exhaustive_search(
    problem: &Problem,
    world: &World,
    limit: u64,
) -> Result<ExhaustiveResult, ExhaustiveError> {
    // Upper-bound the space before committing.
    let mut space: u128 = 1;
    for var in &problem.vars {
        space = space.saturating_mul(var.candidates.len() as u128);
        if space > limit as u128 {
            return Err(ExhaustiveError::TooLarge {
                space,
                limit,
            });
        }
    }

    let n = problem.vars.len();
    let mut current: Binding = Vec::with_capacity(n);
    let mut best: Option<(f64, Binding)> = None;
    let mut evaluated = 0u64;
    search(problem, world, &mut current, &mut best, &mut evaluated);

    match best {
        Some((makespan, binding)) => Ok(ExhaustiveResult {
            binding,
            makespan,
            evaluated,
        }),
        None if n == 0 => {
            // No variables: a single empty binding.
            let e = estimate(problem, &Vec::new(), world)
                .map_err(|_| ExhaustiveError::NoFeasibleBinding)?;
            Ok(ExhaustiveResult {
                binding: Vec::new(),
                makespan: e.makespan,
                evaluated: 1,
            })
        }
        None => Err(ExhaustiveError::NoFeasibleBinding),
    }
}

fn search(
    problem: &Problem,
    world: &World,
    current: &mut Binding,
    best: &mut Option<(f64, Binding)>,
    evaluated: &mut u64,
) {
    let idx = current.len();
    if idx == problem.vars.len() {
        if !current.is_empty() {
            *evaluated += 1;
            if let Ok(e) = estimate(problem, current, world) {
                if best.as_ref().is_none_or(|(b, _)| e.makespan < *b) {
                    *best = Some((e.makespan, current.clone()));
                }
            }
        }
        return;
    }
    let var = &problem.vars[idx];
    for &value in &var.candidates {
        if problem.distinct {
            let clash = current
                .iter()
                .enumerate()
                .any(|(j, v)| problem.vars[j].pool == var.pool && *v == value);
            if clash {
                continue;
            }
        }
        current.push(value);
        search(problem, world, current, best, evaluated);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{evaluate_query, HeuristicConfig};
    use cloudtalk_lang::builder::{hdfs_read_query, hdfs_write_query};
    use cloudtalk_lang::problem::{Address, Value};
    use cloudtalk_lang::units::sizes::MB;
    use estimator::HostState;

    fn world(loads: &[(u32, f64)]) -> World {
        let addrs: Vec<Address> = (1..=8).map(Address).collect();
        let mut w = World::uniform(&addrs, HostState::gbps_idle());
        for &(a, frac) in loads {
            w.set(
                Address(a),
                HostState::gbps_idle().with_up_load(frac).with_down_load(frac),
            );
        }
        w
    }

    #[test]
    fn finds_the_obvious_best_replica() {
        let p = hdfs_read_query(Address(1), &[Address(2), Address(3)], 256.0 * MB)
            .resolve()
            .unwrap();
        let w = world(&[(2, 0.8)]);
        let r = exhaustive_search(&p, &w, 1000).unwrap();
        assert_eq!(r.binding, vec![Value::Addr(Address(3))]);
        assert_eq!(r.evaluated, 2);
    }

    #[test]
    fn respects_distinctness() {
        let nodes: Vec<Address> = (2..6).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 64.0 * MB)
            .resolve()
            .unwrap();
        let r = exhaustive_search(&p, &world(&[]), 1000).unwrap();
        // 4·3·2 = 24 distinct bindings.
        assert_eq!(r.evaluated, 24);
        let set: std::collections::HashSet<&Value> = r.binding.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn heuristic_matches_exhaustive_on_single_variable() {
        // The paper: "our algorithm is optimal for single variable queries".
        for busy in [2u32, 3, 4] {
            let p = hdfs_read_query(
                Address(1),
                &[Address(2), Address(3), Address(4)],
                256.0 * MB,
            )
            .resolve()
            .unwrap();
            let w = world(&[(busy, 0.9)]);
            let ex = exhaustive_search(&p, &w, 1000).unwrap();
            let h = evaluate_query(&p, &w, &HeuristicConfig::default());
            let eh = estimate(&p, &h, &w).unwrap();
            assert!(
                eh.makespan <= ex.makespan * 1.0001,
                "heuristic {} vs optimal {} (busy={busy})",
                eh.makespan,
                ex.makespan
            );
        }
    }

    #[test]
    fn limit_guards_explosion() {
        let nodes: Vec<Address> = (2..34).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 64.0 * MB)
            .resolve()
            .unwrap();
        // 32^3 = 32768 > 1000.
        let err = exhaustive_search(&p, &world(&[]), 1000).unwrap_err();
        assert!(matches!(err, ExhaustiveError::TooLarge { .. }));
    }

    #[test]
    fn empty_problem_ok() {
        let p = Problem::default();
        let r = exhaustive_search(&p, &World::new(), 10).unwrap();
        assert!(r.binding.is_empty());
    }
}
