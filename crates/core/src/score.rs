//! Endpoint fitness scoring (paper §4.2, Listing 1 bottom half).
//!
//! "In its simplest form, the result of `evalRx` is the difference between
//! maximum capacity and usage. However, there is also the selectable
//! weight `W` (implicitly 2), which can be used to change the relative
//! importance of maximum resource capacity versus contention."

use estimator::HostState;

/// Score returned when a resource dimension is irrelevant to the variable
/// or the single-local-endpoint condition holds.
pub const MAX_SCORE: f64 = f64::INFINITY;

/// The selectable capacity-vs-contention weight (paper default: 2).
pub const DEFAULT_WEIGHT: f64 = 2.0;

/// Generic fitness: `W·capacity − usage`. Larger is better; `W > 1`
/// prefers big pipes even when moderately used, `W = 1` is pure residual
/// capacity.
pub fn eval(capacity: f64, usage: f64, w: f64) -> f64 {
    w * capacity - usage
}

/// Network receive fitness of a host.
pub fn eval_rx(state: &HostState, w: f64) -> f64 {
    eval(state.nic_down_capacity, state.nic_down_used, w)
}

/// Network transmit fitness of a host.
pub fn eval_tx(state: &HostState, w: f64) -> f64 {
    eval(state.nic_up_capacity, state.nic_up_used, w)
}

/// Disk read fitness of a host.
pub fn eval_disk_read(state: &HostState, w: f64) -> f64 {
    eval(state.disk_read_capacity, state.disk_read_used, w)
}

/// Disk write fitness of a host.
pub fn eval_disk_write(state: &HostState, w: f64) -> f64 {
    eval(state.disk_write_capacity, state.disk_write_used, w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_beats_busy_at_equal_capacity() {
        let idle = HostState::gbps_idle();
        let busy = HostState::gbps_idle().with_up_load(0.8).with_down_load(0.8);
        assert!(eval_tx(&idle, DEFAULT_WEIGHT) > eval_tx(&busy, DEFAULT_WEIGHT));
        assert!(eval_rx(&idle, DEFAULT_WEIGHT) > eval_rx(&busy, DEFAULT_WEIGHT));
    }

    #[test]
    fn weight_trades_capacity_for_contention() {
        // Big-but-half-used pipe vs small-but-idle pipe.
        let big_busy = HostState::idle(10.0, 1.0).with_up_load(0.5); // cap 10, used 5
        let small_idle = HostState::idle(3.0, 1.0); // cap 3, used 0
        // W = 2: 2·10−5 = 15 > 2·3−0 = 6 → big pipe wins.
        assert!(eval_tx(&big_busy, 2.0) > eval_tx(&small_idle, 2.0));
        // W = 0.6: 0.6·10−5 = 1 < 0.6·3 = 1.8 → idle pipe wins.
        assert!(eval_tx(&big_busy, 0.6) < eval_tx(&small_idle, 0.6));
    }

    #[test]
    fn disk_dimensions_are_independent() {
        let mut s = HostState::gbps_idle();
        s.disk_read_used = s.disk_read_capacity;
        assert!(eval_disk_read(&s, 2.0) < eval_disk_write(&s, 2.0));
    }
}
