//! Status servers: the per-host measurement agents (paper §4, Figure 2).
//!
//! "The status server gathers information about disk and network interface
//! usage and relays it to the CloudTalk server upon request." In this
//! reproduction a status server is anything that can answer "what is the
//! I/O state of host X right now" — the [`StatusSource`] trait. The
//! simulated cluster implements it on top of [`simnet::NetSim`] host-load
//! snapshots; tests use an explicit table.

use cloudtalk_lang::problem::Address;
use desim::{SimDuration, SimTime};
use estimator::HostState;

/// One status reply: the measured state plus how old the measurement is.
///
/// A healthy status server answers with a fresh reading (`age == 0`). A
/// lagging collection pipeline — or a fault-injected stale report — answers
/// with data that was true `age` ago; the CloudTalk server weighs such
/// replies down via staleness decay (see
/// [`crate::server::StatusSnapshot::freshness`]).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct StatusReport {
    /// The reported I/O state.
    pub state: HostState,
    /// Age of the measurement at the time it was served.
    pub age: SimDuration,
}

impl StatusReport {
    /// A report measured just now.
    pub fn fresh(state: HostState) -> Self {
        StatusReport {
            state,
            age: SimDuration::ZERO,
        }
    }
}

/// A source of per-host status reports.
///
/// `poll` returns `None` when the host does not answer (crashed, dropped
/// datagram at the source, unknown address) — the CloudTalk server then
/// assumes the host is under heavy I/O load (§4).
pub trait StatusSource {
    /// Measures the current I/O state of `addr`.
    fn poll(&mut self, addr: Address) -> Option<HostState>;

    /// Like [`StatusSource::poll`], but also reporting the measurement's
    /// age. Sources that always serve live data (the default) report
    /// `age == 0`; decorators such as
    /// [`crate::faults::FaultySource`] and [`LaggedStatusSource`]
    /// override this to serve stale readings.
    fn poll_report(&mut self, addr: Address) -> Option<StatusReport> {
        self.poll(addr).map(StatusReport::fresh)
    }

    /// Moves the source's notion of "now" to `now` before a gather.
    /// Stateless sources (the default) ignore this; time-aware sources —
    /// an [`crate::aggregate::AggregationPlane`] syncing its racks, a
    /// [`LaggedStatusSource`] aging its reports — use it so a serving
    /// plane's shard refresh sees state as of the wave clock rather than
    /// as of construction time.
    fn advance_to(&mut self, _now: SimTime) {}

    /// Takes the span report of the collection work behind the most
    /// recent polls, if the source records one (an
    /// [`crate::aggregate::AggregationPlane`] returns its last sync
    /// trace). Consumed on read so each gather's trace is stitched into
    /// at most one end-to-end query trace. Plain sources return `None`.
    fn take_sync_trace(&mut self) -> Option<obs::TraceReport> {
        None
    }
}

/// A status source backed by an explicit table (tests, static scenarios).
#[derive(Clone, Debug, Default)]
pub struct TableStatusSource {
    table: std::collections::HashMap<Address, HostState>,
}

impl TableStatusSource {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the state reported for `addr`.
    pub fn set(&mut self, addr: Address, state: HostState) {
        self.table.insert(addr, state);
    }

    /// Removes `addr` so polls for it fail (simulating an unresponsive host).
    pub fn silence(&mut self, addr: Address) {
        self.table.remove(&addr);
    }
}

impl StatusSource for TableStatusSource {
    fn poll(&mut self, addr: Address) -> Option<HostState> {
        self.table.get(&addr).copied()
    }
}

/// A status source that adapts a [`simnet::NetSim`]: polls read the live
/// host-load snapshot of the fluid simulation, exactly what a hypervisor
/// status server would measure.
pub struct NetSimStatusSource<'a> {
    net: &'a mut simnet::NetSim,
}

impl<'a> NetSimStatusSource<'a> {
    /// Wraps a live network simulation.
    pub fn new(net: &'a mut simnet::NetSim) -> Self {
        NetSimStatusSource { net }
    }
}

impl StatusSource for NetSimStatusSource<'_> {
    fn poll(&mut self, addr: Address) -> Option<HostState> {
        let host = self.net.topology().host_by_addr(addr.0)?;
        let load = self.net.host_load(host);
        Some(host_state_from_load(&load))
    }
}

/// Converts a simnet per-host load sample into the estimator's host state.
fn host_state_from_load(load: &simnet::engine::HostLoad) -> HostState {
    HostState {
        nic_up_capacity: load.nic_capacity,
        nic_up_used: load.tx_bps,
        nic_down_capacity: load.nic_capacity,
        nic_down_used: load.rx_bps,
        disk_read_capacity: load.disk_read_capacity,
        disk_read_used: load.disk_read_bps,
        disk_write_capacity: load.disk_write_capacity,
        disk_write_used: load.disk_write_bps,
    }
}

/// A status source serving from a frozen [`simnet::LoadSnapshot`]: every
/// poll answers with the cluster state as it was when the snapshot was
/// captured, aged accordingly. This models a status-collection pipeline
/// whose reports lag the live simulation — advance the `NetSim`, keep the
/// old snapshot, and the CloudTalk server sees yesterday's loads with
/// honest `age` metadata.
#[derive(Clone, Debug)]
pub struct LaggedStatusSource {
    snapshot: simnet::LoadSnapshot,
    now: SimTime,
}

impl LaggedStatusSource {
    /// Captures the current state of `net` as the data this source will
    /// keep serving.
    pub fn capture(net: &mut simnet::NetSim) -> Self {
        LaggedStatusSource {
            snapshot: net.load_snapshot(),
            now: net.now(),
        }
    }

    /// Wraps an existing snapshot.
    pub fn from_snapshot(snapshot: simnet::LoadSnapshot) -> Self {
        let now = snapshot.taken_at();
        LaggedStatusSource { snapshot, now }
    }

    /// Sets the current time, so served reports carry the right age.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Age the reports served at the configured current time.
    pub fn lag(&self) -> SimDuration {
        self.snapshot.age_at(self.now)
    }
}

impl StatusSource for LaggedStatusSource {
    fn poll(&mut self, addr: Address) -> Option<HostState> {
        self.snapshot.get(addr.0).map(host_state_from_load)
    }

    fn poll_report(&mut self, addr: Address) -> Option<StatusReport> {
        let state = self.poll(addr)?;
        Some(StatusReport {
            state,
            age: self.lag(),
        })
    }

    fn advance_to(&mut self, now: SimTime) {
        self.set_now(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::engine::TransferSpec;
    use simnet::topology::TopoOptions;
    use simnet::{NetSim, Topology, GBPS};

    #[test]
    fn table_source_round_trips() {
        let mut s = TableStatusSource::new();
        s.set(Address(1), HostState::gbps_idle());
        assert!(s.poll(Address(1)).is_some());
        assert!(s.poll(Address(2)).is_none());
        s.silence(Address(1));
        assert!(s.poll(Address(1)).is_none());
    }

    #[test]
    fn netsim_source_reports_live_load() {
        let topo = Topology::single_switch(3, GBPS, TopoOptions::default());
        let mut net = NetSim::new(topo);
        let hosts = net.hosts();
        net.start(TransferSpec::network(hosts[0], hosts[1], f64::INFINITY));
        let addr0 = Address(net.topology().host(hosts[0]).addr);
        let addr2 = Address(net.topology().host(hosts[2]).addr);
        let mut src = NetSimStatusSource::new(&mut net);
        let busy = src.poll(addr0).unwrap();
        assert!(busy.nic_up_used > 0.0);
        let idle = src.poll(addr2).unwrap();
        assert_eq!(idle.nic_up_used, 0.0);
        // Unknown address: no answer.
        assert!(src.poll(Address(0xFFFF_FFFF)).is_none());
    }

    #[test]
    fn default_poll_report_is_fresh() {
        let mut s = TableStatusSource::new();
        s.set(Address(1), HostState::gbps_idle());
        let rep = s.poll_report(Address(1)).unwrap();
        assert_eq!(rep.age, SimDuration::ZERO);
        assert_eq!(rep.state, HostState::gbps_idle());
        assert!(s.poll_report(Address(2)).is_none());
    }

    #[test]
    fn lagged_source_serves_old_state_with_age() {
        let topo = Topology::single_switch(3, GBPS, TopoOptions::default());
        let mut net = NetSim::new(topo);
        let hosts = net.hosts();
        let addr0 = Address(net.topology().host(hosts[0]).addr);
        net.start(TransferSpec::network(hosts[0], hosts[1], GBPS)); // 1 s of payload
        let mut lagged = LaggedStatusSource::capture(&mut net);

        // The transfer finishes; live state goes idle, the lagged source
        // keeps reporting the old busy reading with a growing age.
        net.run_until_idle();
        lagged.set_now(net.now());
        assert!(lagged.lag() > SimDuration::ZERO);
        let rep = lagged.poll_report(addr0).unwrap();
        assert!(rep.state.nic_up_used > 0.0, "serves the old busy reading");
        assert_eq!(rep.age, lagged.lag());

        let mut live = NetSimStatusSource::new(&mut net);
        assert_eq!(live.poll(addr0).unwrap().nic_up_used, 0.0, "live is idle");
        assert!(lagged.poll_report(Address(0xFFFF_FFFF)).is_none());
    }

    #[test]
    fn status_reports_identical_across_engine_modes() {
        // Status collection must be oblivious to the engine's rate
        // maintenance strategy: mid-simulation snapshots and live polls
        // serve bit-identical readings in both modes.
        use simnet::EngineMode;

        let collect = |mode: EngineMode| {
            let topo = Topology::two_tier(2, 3, GBPS, 2.0 * GBPS, TopoOptions::default());
            let mut net = NetSim::with_mode(topo, mode);
            let hosts = net.hosts();
            net.start(TransferSpec::network(hosts[0], hosts[3], 2e8));
            net.start(TransferSpec::network(hosts[1], hosts[3], 5e8));
            net.start(TransferSpec::pipeline(hosts[2], &[hosts[4], hosts[5]], 3e8));
            net.advance_to(net.now() + SimDuration::from_secs_f64(0.3));
            let lagged = LaggedStatusSource::capture(&mut net);
            net.run_until_idle();
            let mut readings = Vec::new();
            let addrs: Vec<Address> = net
                .hosts()
                .iter()
                .map(|&h| Address(net.topology().host(h).addr))
                .collect();
            let mut lagged = lagged;
            lagged.set_now(net.now());
            for &a in &addrs {
                let rep = lagged.poll_report(a).unwrap();
                readings.push((
                    rep.age,
                    rep.state.nic_up_used.to_bits(),
                    rep.state.nic_down_used.to_bits(),
                    rep.state.disk_write_used.to_bits(),
                ));
            }
            let mut live = NetSimStatusSource::new(&mut net);
            for &a in &addrs {
                let s = live.poll(a).unwrap();
                readings.push((SimDuration::ZERO, s.nic_up_used.to_bits(), 0, 0));
            }
            readings
        };
        assert_eq!(
            collect(EngineMode::Incremental),
            collect(EngineMode::FullRecompute)
        );
    }
}
