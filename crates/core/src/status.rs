//! Status servers: the per-host measurement agents (paper §4, Figure 2).
//!
//! "The status server gathers information about disk and network interface
//! usage and relays it to the CloudTalk server upon request." In this
//! reproduction a status server is anything that can answer "what is the
//! I/O state of host X right now" — the [`StatusSource`] trait. The
//! simulated cluster implements it on top of [`simnet::NetSim`] host-load
//! snapshots; tests use an explicit table.

use cloudtalk_lang::problem::Address;
use estimator::HostState;

/// A source of per-host status reports.
///
/// `poll` returns `None` when the host does not answer (crashed, dropped
/// datagram at the source, unknown address) — the CloudTalk server then
/// assumes the host is under heavy I/O load (§4).
pub trait StatusSource {
    /// Measures the current I/O state of `addr`.
    fn poll(&mut self, addr: Address) -> Option<HostState>;
}

/// A status source backed by an explicit table (tests, static scenarios).
#[derive(Clone, Debug, Default)]
pub struct TableStatusSource {
    table: std::collections::HashMap<Address, HostState>,
}

impl TableStatusSource {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the state reported for `addr`.
    pub fn set(&mut self, addr: Address, state: HostState) {
        self.table.insert(addr, state);
    }

    /// Removes `addr` so polls for it fail (simulating an unresponsive host).
    pub fn silence(&mut self, addr: Address) {
        self.table.remove(&addr);
    }
}

impl StatusSource for TableStatusSource {
    fn poll(&mut self, addr: Address) -> Option<HostState> {
        self.table.get(&addr).copied()
    }
}

/// A status source that adapts a [`simnet::NetSim`]: polls read the live
/// host-load snapshot of the fluid simulation, exactly what a hypervisor
/// status server would measure.
pub struct NetSimStatusSource<'a> {
    net: &'a mut simnet::NetSim,
}

impl<'a> NetSimStatusSource<'a> {
    /// Wraps a live network simulation.
    pub fn new(net: &'a mut simnet::NetSim) -> Self {
        NetSimStatusSource { net }
    }
}

impl StatusSource for NetSimStatusSource<'_> {
    fn poll(&mut self, addr: Address) -> Option<HostState> {
        let host = self.net.topology().host_by_addr(addr.0)?;
        let load = self.net.host_load(host);
        Some(HostState {
            nic_up_capacity: load.nic_capacity,
            nic_up_used: load.tx_bps,
            nic_down_capacity: load.nic_capacity,
            nic_down_used: load.rx_bps,
            disk_read_capacity: load.disk_read_capacity,
            disk_read_used: load.disk_read_bps,
            disk_write_capacity: load.disk_write_capacity,
            disk_write_used: load.disk_write_bps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::engine::TransferSpec;
    use simnet::topology::TopoOptions;
    use simnet::{NetSim, Topology, GBPS};

    #[test]
    fn table_source_round_trips() {
        let mut s = TableStatusSource::new();
        s.set(Address(1), HostState::gbps_idle());
        assert!(s.poll(Address(1)).is_some());
        assert!(s.poll(Address(2)).is_none());
        s.silence(Address(1));
        assert!(s.poll(Address(1)).is_none());
    }

    #[test]
    fn netsim_source_reports_live_load() {
        let topo = Topology::single_switch(3, GBPS, TopoOptions::default());
        let mut net = NetSim::new(topo);
        let hosts = net.hosts();
        net.start(TransferSpec::network(hosts[0], hosts[1], f64::INFINITY));
        let addr0 = Address(net.topology().host(hosts[0]).addr);
        let addr2 = Address(net.topology().host(hosts[2]).addr);
        let mut src = NetSimStatusSource::new(&mut net);
        let busy = src.poll(addr0).unwrap();
        assert!(busy.nic_up_used > 0.0);
        let idle = src.poll(addr2).unwrap();
        assert_eq!(idle.nic_up_used, 0.0);
        // Unknown address: no answer.
        assert!(src.poll(Address(0xFFFF_FFFF)).is_none());
    }
}
