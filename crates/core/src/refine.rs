//! Estimator-backed local refinement of heuristic bindings.
//!
//! The Listing-1 heuristic ([`crate::heuristic`]) scores each variable
//! once against per-host fitness, never consulting the flow-level
//! estimator. This module adds an optional hill-climbing pass on top: try
//! re-binding one variable at a time and keep any move the estimator
//! scores strictly better, until a full round over all variables accepts
//! nothing (or [`RefineConfig::max_rounds`] is exhausted).
//!
//! Single-variable what-if moves are exactly the [`DeltaEstimator`]'s
//! best case — one `rebind` touches only the components the variable's
//! flows live in, the rest replay from the component cache — so the
//! refiner defaults to [`EvalStrategy::Delta`]. Both strategies walk the
//! identical move sequence and delta estimates are bit-identical to
//! scratch ones, so the refined binding does not depend on the strategy
//! (pinned by `tests/refine_strategies.rs`).

use cloudtalk_lang::problem::{Binding, Problem, Value};
use estimator::{estimate_with, DeltaEstimator, DeltaStats, EstimatorScratch, World};

use crate::exhaustive::EvalStrategy;

/// Knobs for [`refine_binding`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RefineConfig {
    /// Maximum full rounds over all variables; a round that accepts no
    /// move ends the climb early.
    pub max_rounds: usize,
    /// How candidate moves are estimated. The result is strategy
    /// independent; `Delta` is simply faster.
    pub eval: EvalStrategy,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            max_rounds: 3,
            eval: EvalStrategy::Delta,
        }
    }
}

/// What a [`refine_binding`] climb did.
#[derive(Clone, Debug, PartialEq)]
pub struct RefineOutcome {
    /// The (possibly unchanged) refined binding.
    pub binding: Binding,
    /// Its estimated makespan, seconds.
    pub makespan: f64,
    /// Rounds actually run (≤ `max_rounds`).
    pub rounds: u64,
    /// Moves whose estimate was consulted.
    pub moves_tried: u64,
    /// Moves kept (strict improvement only).
    pub moves_accepted: u64,
    /// Delta-evaluation work counters (zero under `Scratch`).
    pub delta: DeltaStats,
}

/// Hill-climbs `binding` under single-variable moves, minimising the
/// estimated makespan. Returns `None` when the starting binding has the
/// wrong arity or does not estimate (stalled / unsupported) — there is no
/// baseline to improve on. Moves that fail to estimate are treated as
/// worse and skipped; same-pool distinctness is respected throughout.
///
/// Deterministic: variables in index order, candidates in pool order,
/// strict `<` acceptance — and bit-identical across [`EvalStrategy`]s.
pub fn refine_binding(
    problem: &Problem,
    world: &World,
    binding: &Binding,
    cfg: &RefineConfig,
) -> Option<RefineOutcome> {
    if binding.len() != problem.vars.len() {
        return None;
    }
    if cfg.eval == EvalStrategy::Delta {
        if let Ok(mut de) = DeltaEstimator::new(problem, world) {
            for &v in binding {
                de.push(v);
            }
            de.commit();
            return climb(problem, DeltaMoves { de }, cfg);
        }
        // Static resolution failed: the scratch path fails identically per
        // estimate, so fall through and let the baseline report it.
    }
    climb(
        problem,
        ScratchMoves {
            scratch: EstimatorScratch::new(),
            binding: binding.clone(),
            prev: None,
            world,
        },
        cfg,
    )
}

/// One strategy's view of the climb: apply / revert / accept a move and
/// estimate the current binding.
trait MoveEval {
    fn current(&self) -> &Binding;
    fn apply(&mut self, var: usize, value: Value);
    /// Undoes the one outstanding [`apply`](MoveEval::apply).
    fn revert(&mut self, var: usize);
    /// Keeps the one outstanding [`apply`](MoveEval::apply) for good.
    fn accept(&mut self);
    fn estimate(&mut self, problem: &Problem) -> Option<f64>;
    fn delta_stats(&self) -> DeltaStats;
}

/// The strategy-independent first-improvement climb.
fn climb<E: MoveEval>(
    problem: &Problem,
    mut ev: E,
    cfg: &RefineConfig,
) -> Option<RefineOutcome> {
    let mut best = ev.estimate(problem)?;
    let mut rounds = 0u64;
    let mut moves_tried = 0u64;
    let mut moves_accepted = 0u64;
    for _ in 0..cfg.max_rounds {
        rounds += 1;
        let mut improved = false;
        for var in 0..problem.vars.len() {
            for k in 0..problem.vars[var].candidates.len() {
                let value = problem.vars[var].candidates[k];
                if ev.current()[var] == value {
                    continue;
                }
                if problem.distinct {
                    let pool = problem.vars[var].pool;
                    let clash = ev.current().iter().enumerate().any(|(j, v)| {
                        j != var && problem.vars[j].pool == pool && *v == value
                    });
                    if clash {
                        continue;
                    }
                }
                moves_tried += 1;
                ev.apply(var, value);
                match ev.estimate(problem) {
                    Some(m) if m < best => {
                        best = m;
                        ev.accept();
                        moves_accepted += 1;
                        improved = true;
                    }
                    _ => ev.revert(var),
                }
            }
        }
        if !improved {
            break;
        }
    }
    Some(RefineOutcome {
        binding: ev.current().clone(),
        makespan: best,
        rounds,
        moves_tried,
        moves_accepted,
        delta: ev.delta_stats(),
    })
}

struct ScratchMoves<'a> {
    scratch: EstimatorScratch,
    binding: Binding,
    prev: Option<Value>,
    world: &'a World,
}

impl MoveEval for ScratchMoves<'_> {
    fn current(&self) -> &Binding {
        &self.binding
    }
    fn apply(&mut self, var: usize, value: Value) {
        self.prev = Some(std::mem::replace(&mut self.binding[var], value));
    }
    fn revert(&mut self, var: usize) {
        self.binding[var] = self.prev.take().expect("revert without apply");
    }
    fn accept(&mut self) {
        self.prev = None;
    }
    fn estimate(&mut self, problem: &Problem) -> Option<f64> {
        estimate_with(&mut self.scratch, problem, &self.binding, self.world)
            .ok()
            .map(|e| e.makespan)
    }
    fn delta_stats(&self) -> DeltaStats {
        DeltaStats::default()
    }
}

struct DeltaMoves {
    de: DeltaEstimator,
}

impl MoveEval for DeltaMoves {
    fn current(&self) -> &Binding {
        self.de.binding()
    }
    fn apply(&mut self, var: usize, value: Value) {
        self.de.rebind(var, value);
    }
    fn revert(&mut self, _var: usize) {
        self.de.pop();
    }
    fn accept(&mut self) {
        // The rebind is the only log entry (the climb accepts or reverts
        // each move before the next), so committing here just forgets it.
        self.de.commit();
    }
    fn estimate(&mut self, _problem: &Problem) -> Option<f64> {
        self.de.estimate_summary().ok().map(|e| e.makespan)
    }
    fn delta_stats(&self) -> DeltaStats {
        self.de.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtalk_lang::builder::hdfs_write_query;
    use cloudtalk_lang::problem::Address;
    use estimator::{estimate, HostState};

    fn world(loads: &[(u32, f64)]) -> World {
        let addrs: Vec<Address> = (1..=8).map(Address).collect();
        let mut w = World::uniform(&addrs, HostState::gbps_idle());
        for &(a, frac) in loads {
            w.set(
                Address(a),
                HostState::gbps_idle().with_up_load(frac).with_down_load(frac),
            );
        }
        w
    }

    #[test]
    fn climbs_off_a_deliberately_bad_binding() {
        let nodes: Vec<Address> = (2..8).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 256.0 * 1024.0 * 1024.0)
            .resolve()
            .unwrap();
        // One busy replica: the pipeline's coupled rate is pinned by it,
        // and a single move (off host 2) strictly improves the chain.
        let w = world(&[(2, 0.9)]);
        let bad: Binding = vec![
            Value::Addr(Address(2)),
            Value::Addr(Address(3)),
            Value::Addr(Address(4)),
        ];
        let before = estimate(&p, &bad, &w).unwrap().makespan;
        let o = refine_binding(&p, &w, &bad, &RefineConfig::default()).unwrap();
        assert!(o.makespan < before, "{} !< {}", o.makespan, before);
        assert!(o.moves_accepted > 0);
        assert_eq!(
            estimate(&p, &o.binding, &w).unwrap().makespan.to_bits(),
            o.makespan.to_bits()
        );
        // Distinctness survives the climb.
        let set: std::collections::HashSet<&Value> = o.binding.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn strategies_agree_bitwise() {
        let nodes: Vec<Address> = (2..8).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 256.0 * 1024.0 * 1024.0)
            .resolve()
            .unwrap();
        let w = world(&[(2, 0.9), (4, 0.6), (6, 0.3)]);
        let start: Binding = vec![
            Value::Addr(Address(2)),
            Value::Addr(Address(4)),
            Value::Addr(Address(6)),
        ];
        let d = refine_binding(
            &p,
            &w,
            &start,
            &RefineConfig {
                eval: EvalStrategy::Delta,
                ..Default::default()
            },
        )
        .unwrap();
        let s = refine_binding(
            &p,
            &w,
            &start,
            &RefineConfig {
                eval: EvalStrategy::Scratch,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.binding, s.binding);
        assert_eq!(d.makespan.to_bits(), s.makespan.to_bits());
        assert_eq!(d.moves_tried, s.moves_tried);
        assert_eq!(d.moves_accepted, s.moves_accepted);
        assert_eq!(s.delta, DeltaStats::default());
        assert!(d.delta.estimates > 0);
    }

    #[test]
    fn wrong_arity_and_infeasible_baselines_yield_none() {
        let nodes: Vec<Address> = (2..5).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 64.0 * 1024.0 * 1024.0)
            .resolve()
            .unwrap();
        let w = world(&[]);
        assert!(refine_binding(&p, &w, &Vec::new(), &RefineConfig::default()).is_none());
        let full: Binding = nodes.iter().map(|&a| Value::Addr(a)).collect();
        // Unknown world: the baseline stalls under either strategy.
        for eval in [EvalStrategy::Delta, EvalStrategy::Scratch] {
            let cfg = RefineConfig {
                eval,
                ..Default::default()
            };
            assert!(refine_binding(&p, &World::new(), &full, &cfg).is_none());
        }
    }

    #[test]
    fn local_optimum_is_left_untouched() {
        let nodes: Vec<Address> = (2..6).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 64.0 * 1024.0 * 1024.0)
            .resolve()
            .unwrap();
        let w = world(&[(5, 0.95)]);
        // All-idle binding: no single-variable move can beat it.
        let start: Binding = vec![
            Value::Addr(Address(2)),
            Value::Addr(Address(3)),
            Value::Addr(Address(4)),
        ];
        let o = refine_binding(&p, &w, &start, &RefineConfig::default()).unwrap();
        assert_eq!(o.binding, start);
        assert_eq!(o.moves_accepted, 0);
        assert_eq!(o.rounds, 1, "a silent round ends the climb");
    }
}
