//! Packet-level binding search (the tentpole of the §5.4 story).
//!
//! The paper's incast-dominated queries — the web-search aggregator
//! placement — must be answered with the packet-level simulator, because
//! the flow-level estimator cannot see drops and RTOs. But the simulator
//! is "quite slow", so enumerating a binding space at packet fidelity is
//! only affordable with the optimisations implemented here:
//!
//! * **Parallel fan-out** — the first variable's candidates are split
//!   into contiguous chunks, one per worker thread, exactly like
//!   [`crate::exhaustive`]; the final reduction scans workers in chunk
//!   order with a strict `<`, so the winning binding (and its makespan,
//!   bit for bit) is always the one the plain sequential scan would have
//!   found first, at any thread count.
//! * **Incumbent early-abort** — workers share the best makespan so far
//!   through an [`AtomicU64`] holding the `f64` bit pattern (for
//!   non-negative IEEE floats bit order equals numeric order, so
//!   `fetch_min` on bits is `min` on values). Each simulation runs with
//!   the incumbent as its deadline and is abandoned the moment simulated
//!   time passes it with query flows unfinished — the binding's true
//!   makespan is then *strictly greater* than the incumbent, hence
//!   strictly greater than the final best, so it can neither win nor tie.
//!   Hopeless bindings cost a fraction of a full run.
//! * **Symmetry memoisation** — bindings are canonicalised by the
//!   topology equivalence class of their chosen hosts. Two hosts are
//!   interchangeable when they sit in the same rack behind access links
//!   of identical capacity and latency and neither is pinned by a fixed
//!   endpoint of the query; swapping them is a topology automorphism, and
//!   the simulator is deterministic, so isomorphic bindings produce
//!   bit-identical makespans and can share one cached simulation result.
//!   Only *completed* runs are cached (an aborted run has no makespan).
//! * **Simulator reuse** — each worker owns a single [`PktSim`] that is
//!   [`PktSim::reset`] between bindings, keeping ports and the route
//!   cache warm instead of allocating the world per candidate.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cloudtalk_lang::problem::{Address, Binding, Problem};
use pktsim::{PktSim, SimConfig};
use simnet::topology::{HostId, Topology};

use crate::canon::{CanonKey, HostClasses};
use crate::pkteval::{pkt_evaluate_program, PktEvalError, PktEvalOutcome, PktProgram};

/// The provider's simulated mirror of (part of) its datacenter: the
/// topology the packet-level backend evaluates bindings against, plus the
/// address → host mapping placing the tenant's VMs in it.
#[derive(Clone, Debug)]
pub struct MirrorTopology {
    topo: Topology,
    addr_to_host: HashMap<Address, HostId>,
}

impl MirrorTopology {
    /// Wraps `topo`, mapping every simulated host by its own address.
    pub fn new(topo: Topology) -> Self {
        let addr_to_host = topo
            .host_ids()
            .into_iter()
            .map(|h| (Address(topo.host(h).addr), h))
            .collect();
        MirrorTopology { topo, addr_to_host }
    }

    /// The mirrored topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The address → simulated-host mapping.
    pub fn addr_to_host(&self) -> &HashMap<Address, HostId> {
        &self.addr_to_host
    }
}

/// Knobs for [`pkt_search`].
#[derive(Clone, Copy, Debug)]
pub struct PktSearchOptions {
    /// Refuse searches whose binding space exceeds this many bindings.
    pub limit: u64,
    /// Worker threads; `0` and `1` both mean single-threaded.
    pub threads: usize,
    /// Share one simulation result across symmetry-equivalent bindings.
    pub memoise: bool,
    /// Abandon simulations that can no longer beat the incumbent.
    pub early_abort: bool,
    /// Packet-simulator configuration.
    pub sim: SimConfig,
}

impl PktSearchOptions {
    /// Single-threaded search bounded by `limit` bindings, with
    /// memoisation and early-abort on.
    pub fn new(limit: u64) -> Self {
        PktSearchOptions {
            limit,
            threads: 1,
            memoise: true,
            early_abort: true,
            sim: SimConfig::default(),
        }
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Enables or disables symmetry memoisation.
    pub fn memoise(mut self, on: bool) -> Self {
        self.memoise = on;
        self
    }

    /// Enables or disables incumbent early-abort.
    pub fn early_abort(mut self, on: bool) -> Self {
        self.early_abort = on;
        self
    }

    /// Sets the simulator configuration.
    pub fn sim(mut self, cfg: SimConfig) -> Self {
        self.sim = cfg;
        self
    }
}

/// Outcome of a packet-level search.
#[derive(Clone, Debug, PartialEq)]
pub struct PktSearchResult {
    /// The binding with the minimum simulated makespan.
    pub binding: Binding,
    /// Its makespan, seconds.
    pub makespan: f64,
    /// Simulations run to completion.
    pub evaluated: u64,
    /// Simulations abandoned by the incumbent deadline.
    pub aborted: u64,
    /// Bindings answered from the symmetry cache.
    pub memo_hits: u64,
    /// Bindings that had to simulate (memoisation on only).
    pub memo_misses: u64,
}

/// Errors from the packet-level search.
#[derive(Clone, Debug, PartialEq)]
pub enum PktSearchError {
    /// The search space exceeds `limit` bindings.
    TooLarge {
        /// Upper bound on the number of bindings.
        space: u128,
        /// The configured limit.
        limit: u64,
    },
    /// No binding could be simulated (e.g. every binding is disk-only).
    NoFeasibleBinding,
    /// The problem itself cannot be packet-simulated.
    Eval(PktEvalError),
}

impl std::fmt::Display for PktSearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PktSearchError::TooLarge { space, limit } => {
                write!(f, "search space of {space} bindings exceeds limit {limit}")
            }
            PktSearchError::NoFeasibleBinding => write!(f, "no feasible binding"),
            PktSearchError::Eval(e) => write!(f, "packet-level evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for PktSearchError {}

impl From<PktEvalError> for PktSearchError {
    fn from(e: PktEvalError) -> Self {
        PktSearchError::Eval(e)
    }
}

/// What the symmetry cache knows about an equivalence class.
#[derive(Clone, Copy, Debug)]
enum MemoEntry {
    /// A member ran to completion: the class's exact makespan.
    Exact(f64),
    /// A member was abandoned at this deadline: the class's makespan is
    /// *strictly greater*. The deadline was an incumbent snapshot and the
    /// incumbent only decreases, so `final best <= bound < makespan` —
    /// every member of the class is provably not the argmin (nor a tie)
    /// and can be discarded without simulating.
    ExceedsBound(f64),
}

/// Builds the host equivalence classes of `problem` over `mirror`: two
/// addresses share a class iff their hosts sit in the same rack behind
/// access links of identical capacity and latency *and* neither appears
/// as a fixed endpoint of the query (a fixed endpoint is pinned: an
/// automorphism must map it to itself, so it cannot be swapped).
pub fn host_classes(problem: &Problem, mirror: &MirrorTopology) -> HostClasses {
    HostClasses::build(problem, |a| {
        mirror.addr_to_host.get(&a).map(|&h| {
            let host = mirror.topo.host(h);
            let link = mirror.topo.link(host.access_link);
            (
                host.rack,
                link.capacity_bps.to_bits(),
                link.latency.as_nanos(),
            )
        })
    })
}

/// Binding-independent artifacts of a packet-level search: the compiled
/// program and the symmetry classes. Computing them is pure — the same
/// problem over the same mirror always prepares the same artifacts — so
/// the answer cache keeps them keyed by problem fingerprint and repeat
/// queries skip recompilation entirely.
#[derive(Clone, Debug)]
pub struct PktArtifacts {
    /// The compiled flow program.
    pub prog: PktProgram,
    /// Host symmetry classes for the memoiser.
    pub classes: HostClasses,
}

impl PktArtifacts {
    /// Rough heap footprint, for cache accounting.
    pub fn approx_bytes(&self) -> u64 {
        self.prog.approx_bytes() + 16 * u64::from(self.classes.classes().max(1))
    }
}

/// Compiles `problem` and builds its symmetry classes, verifying every
/// mentioned address exists in the mirror so per-binding evaluation can
/// never hit `UnknownAddress` mid-search.
pub fn pkt_prepare(
    problem: &Problem,
    mirror: &MirrorTopology,
) -> Result<PktArtifacts, PktSearchError> {
    let prog = PktProgram::compile(problem)?;
    for a in problem.mentioned_addresses() {
        if !mirror.addr_to_host.contains_key(&a) {
            return Err(PktSearchError::Eval(PktEvalError::UnknownAddress(a)));
        }
    }
    let classes = host_classes(problem, mirror);
    Ok(PktArtifacts { prog, classes })
}

/// Searches all bindings of `problem` (respecting same-pool
/// distinctness) for the minimum packet-simulated makespan over
/// `mirror`. Deterministic: the winning binding and its makespan are
/// bit-identical at any thread count and with memoisation on or off;
/// only the `evaluated`/`aborted`/memo counters vary.
pub fn pkt_search(
    problem: &Problem,
    mirror: &MirrorTopology,
    opts: &PktSearchOptions,
) -> Result<PktSearchResult, PktSearchError> {
    // Space guard first: a TooLarge query is rejected in O(|vars|)
    // without compiling anything.
    space_guard(problem, opts.limit)?;
    let artifacts = pkt_prepare(problem, mirror)?;
    pkt_search_prepared(problem, mirror, opts, &artifacts)
}

fn space_guard(problem: &Problem, limit: u64) -> Result<(), PktSearchError> {
    let mut space: u128 = 1;
    for var in &problem.vars {
        space = space.saturating_mul(var.candidates.len() as u128);
        if space > limit as u128 {
            return Err(PktSearchError::TooLarge { space, limit });
        }
    }
    Ok(())
}

/// [`pkt_search`] with the binding-independent artifacts already
/// prepared (by [`pkt_prepare`], possibly on an earlier query). The
/// caller must pass artifacts prepared from this exact `problem` and
/// `mirror` pair; the answer cache guarantees that by keying them on
/// the problem's structural fingerprint.
pub fn pkt_search_prepared(
    problem: &Problem,
    mirror: &MirrorTopology,
    opts: &PktSearchOptions,
    artifacts: &PktArtifacts,
) -> Result<PktSearchResult, PktSearchError> {
    space_guard(problem, opts.limit)?;
    let prog = &artifacts.prog;

    let n_vars = problem.vars.len();
    if n_vars == 0 {
        let mut sim = PktSim::new(mirror.topo.clone(), opts.sim);
        let out = pkt_evaluate_program(prog, &Vec::new(), &mut sim, &mirror.addr_to_host, None)?;
        let PktEvalOutcome::Completed(r) = out else {
            unreachable!("no deadline was set")
        };
        return Ok(PktSearchResult {
            binding: Vec::new(),
            makespan: r.makespan,
            evaluated: 1,
            aborted: 0,
            memo_hits: 0,
            memo_misses: 0,
        });
    }

    let canon = opts.memoise.then_some(&artifacts.classes);
    let memo: Mutex<HashMap<CanonKey, MemoEntry>> = Mutex::new(HashMap::new());
    let incumbent = AtomicU64::new(f64::INFINITY.to_bits());
    let ctx = Ctx {
        problem,
        prog,
        mirror,
        canon,
        memo: &memo,
        incumbent: &incumbent,
        early_abort: opts.early_abort,
    };

    let first = &problem.vars[0].candidates;
    let threads = opts.threads.max(1).min(first.len().max(1));
    let locals: Vec<Local> = if threads <= 1 {
        let mut local = Local::default();
        let mut sim = PktSim::new(mirror.topo.clone(), opts.sim);
        let mut current: Binding = Vec::with_capacity(n_vars);
        search_rec(ctx, &mut sim, &mut current, &mut local);
        vec![local]
    } else {
        std::thread::scope(|s| {
            // Contiguous chunks keep the first-variable order intact, so
            // scanning workers in spawn order below reproduces the
            // sequential first-found tie-break.
            let chunk = first.len() / threads;
            let extra = first.len() % threads;
            let mut lo = 0usize;
            let mut handles = Vec::with_capacity(threads);
            for w in 0..threads {
                let hi = lo + chunk + usize::from(w < extra);
                let mine = &first[lo..hi];
                lo = hi;
                let sim_cfg = opts.sim;
                handles.push(s.spawn(move || {
                    let mut local = Local::default();
                    let mut sim = PktSim::new(ctx.mirror.topo.clone(), sim_cfg);
                    let mut current: Binding = Vec::with_capacity(n_vars);
                    for &value in mine {
                        current.push(value);
                        search_rec(ctx, &mut sim, &mut current, &mut local);
                        current.pop();
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("pktsearch worker panicked"))
                .collect()
        })
    };

    let mut best: Option<(f64, Binding)> = None;
    let mut evaluated = 0u64;
    let mut aborted = 0u64;
    let mut memo_hits = 0u64;
    let mut memo_misses = 0u64;
    for local in locals {
        evaluated += local.evaluated;
        aborted += local.aborted;
        memo_hits += local.memo_hits;
        memo_misses += local.memo_misses;
        if let Some((m, b)) = local.best {
            if best.as_ref().is_none_or(|(bm, _)| m < *bm) {
                best = Some((m, b));
            }
        }
    }

    match best {
        Some((makespan, binding)) => Ok(PktSearchResult {
            binding,
            makespan,
            evaluated,
            aborted,
            memo_hits,
            memo_misses,
        }),
        None => Err(PktSearchError::NoFeasibleBinding),
    }
}

/// Per-worker accumulation.
#[derive(Default)]
struct Local {
    best: Option<(f64, Binding)>,
    evaluated: u64,
    aborted: u64,
    memo_hits: u64,
    memo_misses: u64,
}

impl Local {
    /// Records a binding's exact score, keeping the first-found minimum
    /// (strict `<`) and publishing it to the shared incumbent.
    fn score(&mut self, makespan: f64, binding: &Binding, incumbent: &AtomicU64) {
        if self.best.as_ref().is_none_or(|(b, _)| makespan < *b) {
            self.best = Some((makespan, binding.clone()));
            incumbent.fetch_min(makespan.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Read-only search context shared by all workers.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    problem: &'a Problem,
    prog: &'a PktProgram,
    mirror: &'a MirrorTopology,
    canon: Option<&'a HostClasses>,
    memo: &'a Mutex<HashMap<CanonKey, MemoEntry>>,
    incumbent: &'a AtomicU64,
    early_abort: bool,
}

fn search_rec(ctx: Ctx<'_>, sim: &mut PktSim, current: &mut Binding, local: &mut Local) {
    let depth = current.len();
    if depth == ctx.problem.vars.len() {
        evaluate_leaf(ctx, sim, current, local);
        return;
    }
    let var = &ctx.problem.vars[depth];
    for &value in &var.candidates {
        if ctx.problem.distinct {
            let clash = current
                .iter()
                .enumerate()
                .any(|(j, v)| ctx.problem.vars[j].pool == var.pool && *v == value);
            if clash {
                continue;
            }
        }
        current.push(value);
        search_rec(ctx, sim, current, local);
        current.pop();
    }
}

fn evaluate_leaf(ctx: Ctx<'_>, sim: &mut PktSim, binding: &Binding, local: &mut Local) {
    // Symmetry cache: isomorphic bindings simulate bit-identically, so a
    // cached `Exact` makespan is *exact*, not approximate — winners stay
    // bit-identical with memoisation on or off. An `ExceedsBound` entry
    // discards the whole class without simulating (see [`MemoEntry`]).
    let key = ctx.canon.map(|c| c.key(binding));
    if let Some(k) = &key {
        let cached = ctx.memo.lock().expect("memo poisoned").get(k).copied();
        match cached {
            Some(MemoEntry::Exact(m)) => {
                local.memo_hits += 1;
                local.score(m, binding, ctx.incumbent);
                return;
            }
            Some(MemoEntry::ExceedsBound(_)) => {
                local.memo_hits += 1;
                return;
            }
            None => local.memo_misses += 1,
        }
    }

    sim.reset();
    let deadline = if ctx.early_abort {
        let inc = f64::from_bits(ctx.incumbent.load(Ordering::Relaxed));
        inc.is_finite().then_some(inc)
    } else {
        None
    };
    match pkt_evaluate_program(ctx.prog, binding, sim, &ctx.mirror.addr_to_host, deadline) {
        Ok(PktEvalOutcome::Completed(r)) => {
            local.evaluated += 1;
            if let Some(k) = key {
                // Exact results always overwrite: an `ExceedsBound` left
                // by a concurrent worker is strictly less informative.
                ctx.memo
                    .lock()
                    .expect("memo poisoned")
                    .insert(k, MemoEntry::Exact(r.makespan));
            }
            local.score(r.makespan, binding, ctx.incumbent);
        }
        Ok(PktEvalOutcome::DeadlineExceeded) => {
            // Strictly worse than the incumbent, hence than the final
            // best: cannot win, cannot tie. Score +inf by not scoring.
            local.aborted += 1;
            if let (Some(k), Some(d)) = (key, deadline) {
                // Remember the proof, not just the failure: the class's
                // makespan strictly exceeds `d`, so siblings skip their
                // own doomed simulation. Never downgrade an entry —
                // `Exact` beats any bound, a larger bound beats a smaller.
                let mut memo = ctx.memo.lock().expect("memo poisoned");
                match memo.get(&k).copied() {
                    Some(MemoEntry::Exact(_)) => {}
                    Some(MemoEntry::ExceedsBound(prev)) if prev >= d => {}
                    _ => {
                        memo.insert(k, MemoEntry::ExceedsBound(d));
                    }
                }
            }
        }
        // Per-binding degeneracy (e.g. a Disk value turning the whole
        // query disk-only): this binding is infeasible, skip it.
        Err(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtalk_lang::ast::{AttrKind, BinOp, Expr, FlowRef, RefAttr};
    use cloudtalk_lang::builder::QueryBuilder;
    use cloudtalk_lang::problem::Value;
    use cloudtalk_lang::Span;
    use simnet::topology::TopoOptions;
    use simnet::GBPS;

    fn mirror(n: usize) -> MirrorTopology {
        MirrorTopology::new(Topology::single_switch(n, GBPS, TopoOptions::default()))
    }

    fn addr_of(m: &MirrorTopology, i: usize) -> Address {
        Address(m.topology().host(HostId(i)).addr)
    }

    /// `t(f)` reference for the 1-based flow index `idx`.
    fn t_ref(idx: usize) -> Expr {
        Expr::Ref {
            attr: RefAttr::Transferred,
            flow: FlowRef::Index {
                index: idx,
                span: Span::DUMMY,
            },
            span: Span::DUMMY,
        }
    }

    /// Fan-in query: each leaf sends to a free aggregator drawn from
    /// `candidates`, which forwards the gathered bytes to a sink.
    fn fan_in(m: &MirrorTopology, leaves: &[usize], candidates: &[usize], sink: usize) -> Problem {
        let mut b = QueryBuilder::new();
        let pool: Vec<Address> = candidates.iter().map(|&i| addr_of(m, i)).collect();
        let agg = b.variable("agg", pool);
        for &leaf in leaves {
            b.flow(format!("g{leaf}"))
                .from_addr(addr_of(m, leaf))
                .to_var(agg)
                .size(10.0 * 1024.0);
        }
        // transfer t(g1)+t(g2)+…: the upward flow starts once every
        // gather flow has delivered.
        let mut dep = t_ref(1);
        for idx in 2..=leaves.len() {
            dep = Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(dep),
                rhs: Box::new(t_ref(idx)),
            };
        }
        b.flow("up")
            .from_var(agg)
            .to_addr(addr_of(m, sink))
            .size(10.0 * 1024.0 * leaves.len() as f64)
            .attr(AttrKind::Transfer, dep);
        b.resolve().unwrap()
    }

    #[test]
    fn finds_minimum_and_counts_work() {
        let m = mirror(12);
        let p = fan_in(&m, &[0, 1, 2, 3], &[8, 9, 10], 11);
        let r = pkt_search(&p, &m, &PktSearchOptions::new(100)).unwrap();
        assert_eq!(r.binding.len(), 1);
        assert!(r.makespan > 0.0);
        assert!(r.evaluated + r.memo_hits >= 3 || r.aborted > 0);
    }

    #[test]
    fn space_guard_fires_without_simulation() {
        let m = mirror(12);
        let p = fan_in(&m, &[0, 1], &[4, 5, 6, 7, 8, 9], 11);
        let err = pkt_search(&p, &m, &PktSearchOptions::new(3)).unwrap_err();
        assert!(matches!(err, PktSearchError::TooLarge { space: 6, limit: 3 }));
    }

    #[test]
    fn unknown_candidate_rejected_up_front() {
        let m = mirror(4);
        let mut b = QueryBuilder::new();
        let v = b.variable("x", [addr_of(&m, 1), Address(0xDEAD)]);
        b.flow("f").from_addr(addr_of(&m, 0)).to_var(v).size(1e4);
        let p = b.resolve().unwrap();
        let err = pkt_search(&p, &m, &PktSearchOptions::new(100)).unwrap_err();
        assert_eq!(
            err,
            PktSearchError::Eval(PktEvalError::UnknownAddress(Address(0xDEAD)))
        );
    }

    #[test]
    fn symmetric_candidates_collapse_to_one_class() {
        // Single switch: every non-pinned host is interchangeable, so all
        // candidate aggregators share a class and the cache answers all
        // but the first binding.
        let m = mirror(12);
        let p = fan_in(&m, &[0, 1, 2, 3], &[8, 9, 10], 11);
        let opts = PktSearchOptions::new(100).early_abort(false);
        let r = pkt_search(&p, &m, &opts).unwrap();
        assert_eq!(r.evaluated, 1, "one class, one simulation");
        assert_eq!(r.memo_misses, 1);
        assert_eq!(r.memo_hits, 2);
        // First-found tie-break: the first candidate wins.
        assert_eq!(r.binding, vec![Value::Addr(addr_of(&m, 8))]);
    }

    #[test]
    fn memoisation_does_not_change_the_answer() {
        let m = mirror(12);
        let p = fan_in(&m, &[0, 1, 2, 3], &[8, 9, 10], 11);
        let plain = pkt_search(
            &p,
            &m,
            &PktSearchOptions::new(100).memoise(false).early_abort(false),
        )
        .unwrap();
        let memo = pkt_search(&p, &m, &PktSearchOptions::new(100).early_abort(false)).unwrap();
        assert_eq!(memo.binding, plain.binding);
        assert_eq!(memo.makespan.to_bits(), plain.makespan.to_bits());
        assert_eq!(plain.evaluated, 3);
        assert!(memo.evaluated < plain.evaluated);
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        let m = mirror(16);
        let p = fan_in(&m, &[0, 1, 2, 3, 4], &[8, 9, 10, 11, 12, 13], 15);
        let reference = pkt_search(
            &p,
            &m,
            &PktSearchOptions::new(100).memoise(false).early_abort(false),
        )
        .unwrap();
        for threads in [1usize, 2, 8] {
            for memoise in [false, true] {
                for abort in [false, true] {
                    let opts = PktSearchOptions::new(100)
                        .threads(threads)
                        .memoise(memoise)
                        .early_abort(abort);
                    let r = pkt_search(&p, &m, &opts).unwrap();
                    assert_eq!(
                        r.binding, reference.binding,
                        "threads={threads} memo={memoise} abort={abort}"
                    );
                    assert_eq!(
                        r.makespan.to_bits(),
                        reference.makespan.to_bits(),
                        "threads={threads} memo={memoise} abort={abort}"
                    );
                }
            }
        }
    }

    #[test]
    fn pinned_hosts_are_never_pooled() {
        // Host 11 is the sink (pinned) *and* a candidate: binding the
        // aggregator onto the sink loopbacks the upward flow, which is
        // very different from binding a free host — the canonicaliser
        // must keep it in its own class.
        let m = mirror(12);
        let p = fan_in(&m, &[0, 1, 2], &[8, 11], 11);
        let plain = pkt_search(
            &p,
            &m,
            &PktSearchOptions::new(100).memoise(false).early_abort(false),
        )
        .unwrap();
        let memo = pkt_search(&p, &m, &PktSearchOptions::new(100).early_abort(false)).unwrap();
        assert_eq!(memo.binding, plain.binding);
        assert_eq!(memo.makespan.to_bits(), plain.makespan.to_bits());
        assert_eq!(memo.memo_hits, 0, "a pinned and a free host never share a class");
    }

    #[test]
    fn disk_only_bindings_are_skipped_not_fatal() {
        // Table 1 allows `disk` in a candidate pool ("read from a replica
        // *or* the local disk"); binding it turns the only flow
        // non-network, which the evaluator rejects — the search must skip
        // that binding and still answer from the remaining ones.
        use cloudtalk_lang::problem::{Flow, Variable};
        let m = mirror(4);
        let src = addr_of(&m, 0);
        let mut p = Problem {
            vars: vec![Variable {
                name: "x".into(),
                candidates: vec![Value::Disk, Value::Addr(addr_of(&m, 1))],
                pool: 0,
            }],
            flows: vec![],
            distinct: true,
        };
        let mut f = Flow::new(
            Some("f".into()),
            cloudtalk_lang::problem::Endpoint::Addr(src),
            cloudtalk_lang::problem::Endpoint::Var(cloudtalk_lang::problem::VarId(0)),
        );
        f.set_attr(
            AttrKind::Size,
            cloudtalk_lang::problem::ExprR::Literal(1e4),
        );
        p.flows.push(f);
        let r = pkt_search(&p, &m, &PktSearchOptions::new(100)).unwrap();
        assert_eq!(r.binding, vec![Value::Addr(addr_of(&m, 1))]);
        assert_eq!(r.evaluated, 1);
    }
}
