//! Simulated UDP scatter-gather status collection (paper §4/§4.3).
//!
//! "UDP is used as transport, to minimize incast related problems … Our
//! experiments show that querying one hundred servers gives low packet
//! loss with our UDP-based solution, while for a thousand servers, there
//! is high packet loss." The per-reply loss probability here grows with
//! fan-out beyond a knee, reproducing exactly the behaviour that makes
//! sampling (§4.3) necessary.
//!
//! Resilience: a single round answers with whatever arrived before the
//! timeout, silently treating everyone else as overloaded — one burst of
//! loss skews the whole placement. [`scatter_gather_retry`] therefore
//! re-queries **only the missing set** for a bounded number of rounds with
//! exponential backoff; because retry fan-out shrinks to the missing set,
//! the incast-driven loss probability drops with every round, so transient
//! loss and stragglers are recovered quickly while crashed hosts stay
//! missing. Elapsed time and [`OverheadLedger`] bytes are accounted per
//! round.
//!
//! This is also the ingestion choke point for status data: every reply is
//! passed through [`estimator::HostState::sanitised`] here, so no garbage
//! reading (NaN, negative, overflowed) ever reaches the estimator or the
//! scoring arithmetic.

use cloudtalk_lang::problem::Address;
use desim::rng::DetRng;
use desim::SimDuration;
use rand::Rng;

use crate::messages::OverheadLedger;
use crate::status::{StatusReport, StatusSource};

/// The saturation point of the loss model: beyond this, extra fan-out
/// cannot make things worse (some replies always squeak through).
pub const MAX_LOSS_PROBABILITY: f64 = 0.9;

/// Retry/backoff policy for re-querying hosts that missed a round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Extra rounds after the first (0 = the paper's one-shot behaviour).
    pub max_retries: u32,
    /// Wait before the first retry.
    pub backoff: SimDuration,
    /// Backoff multiplier per further retry (exponential, saturating).
    pub backoff_multiplier: u32,
    /// Seeded jitter, as a percentage of the base backoff: each wait is
    /// stretched by a uniformly drawn factor in `[1, 1 + jitter_pct/100]`.
    /// Spreads otherwise-synchronized retries (many collectors hammering
    /// one recovering aggregator) without ever shortening a backoff below
    /// its deterministic base. `0` (the default) draws nothing from the
    /// RNG, so existing seeded runs stay bit-identical.
    pub jitter_pct: u32,
}

impl RetryPolicy {
    /// No retries: single-round scatter-gather.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_retries: 0,
        backoff: SimDuration::ZERO,
        backoff_multiplier: 1,
        jitter_pct: 0,
    };

    /// The deterministic base backoff to wait before retry number `retry`
    /// (1-based), jitter excluded.
    pub fn backoff_before(&self, retry: u32) -> SimDuration {
        let mut factor: u64 = 1;
        for _ in 1..retry {
            factor = factor.saturating_mul(self.backoff_multiplier.max(1) as u64);
        }
        self.backoff.saturating_mul(factor)
    }

    /// The backoff before retry number `retry` with seeded jitter applied:
    /// the base backoff stretched by `1 + U(0..=jitter_pct)/100`.
    ///
    /// With `jitter_pct == 0` the RNG is **not** consulted — the stream
    /// position is untouched and the result equals
    /// [`RetryPolicy::backoff_before`] exactly, keeping jitter-free
    /// configurations bit-stable.
    pub fn backoff_before_jittered(&self, retry: u32, rng: &mut DetRng) -> SimDuration {
        let base = self.backoff_before(retry);
        if self.jitter_pct == 0 {
            return base;
        }
        let stretch_pct = rng.gen_range(0..=u64::from(self.jitter_pct));
        base + SimDuration::from_nanos(base.as_nanos() / 100 * stretch_pct)
    }
}

impl Default for RetryPolicy {
    /// Two retries, 2 ms initial backoff, doubling, no jitter.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: SimDuration::from_millis(2),
            backoff_multiplier: 2,
            jitter_pct: 0,
        }
    }
}

/// Scatter-gather parameters.
#[derive(Clone, Copy, Debug)]
pub struct TransportConfig {
    /// Fan-out below which replies are essentially loss-free.
    pub knee: usize,
    /// Per-reply loss probability gained for each doubling beyond the knee.
    pub loss_per_doubling: f64,
    /// Time the CloudTalk server waits for stragglers before answering
    /// with whatever arrived ("waiting for a predefined amount of time,
    /// or until all responses arrive").
    pub timeout: SimDuration,
    /// Network round-trip for one status exchange under no loss.
    pub rtt: SimDuration,
    /// Retry/backoff policy for missing hosts.
    pub retry: RetryPolicy,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            knee: 100,
            loss_per_doubling: 0.25,
            timeout: SimDuration::from_millis(10),
            rtt: SimDuration::from_micros(200),
            retry: RetryPolicy::default(),
        }
    }
}

impl TransportConfig {
    /// An in-process "transport": no incast knee, no loss, no retries.
    /// Use when the status source is co-located with the server (e.g. a
    /// [`crate::aggregate::AggregationPlane`] inside the server process)
    /// — the real wire traffic is then whatever that source accounts in
    /// its own ledger.
    pub fn local() -> Self {
        TransportConfig {
            knee: usize::MAX,
            loss_per_doubling: 0.0,
            timeout: SimDuration::ZERO,
            rtt: SimDuration::ZERO,
            retry: RetryPolicy::NONE,
        }
    }
}

/// Result of a scatter-gather exchange (one round or several).
#[derive(Clone, Debug)]
pub struct GatherOutcome {
    /// Replies that made it back, in query order (first round first, then
    /// each retry round's recoveries).
    pub replies: Vec<(Address, StatusReport)>,
    /// Addresses that never answered (lost datagram or silent host).
    pub missing: Vec<Address>,
    /// Addresses missing after the *first* round — the set retries had to
    /// recover. `missing.len() / first_round_missing` is the unrecovered
    /// fraction.
    pub first_round_missing: usize,
    /// Rounds performed (1 = no retries needed or allowed).
    pub rounds: u32,
    /// Total time: per-round RTT/timeout plus inter-round backoff.
    pub elapsed: SimDuration,
}

/// One query/reply round against `addrs`; replies are sanitised here —
/// the single choke point between raw status reports and the estimator.
/// Retry rounds (`retry = true`) account their traffic in the ledger's
/// distinct retry counters so re-sends never inflate the §5.5 bytes.
fn gather_round(
    source: &mut impl StatusSource,
    addrs: &[Address],
    cfg: &TransportConfig,
    rng: &mut DetRng,
    ledger: &mut OverheadLedger,
    out: &mut GatherOutcome,
    retry: bool,
) -> SimDuration {
    let n = addrs.len();
    let loss_p = loss_probability(n, cfg);
    let before = out.replies.len();
    for &addr in addrs {
        let lost = loss_p > 0.0 && rng.gen_bool(loss_p);
        match (lost, source.poll_report(addr)) {
            (false, Some(mut report)) => {
                report.state = report.state.sanitised();
                out.replies.push((addr, report));
            }
            _ => out.missing.push(addr),
        }
    }
    let received = (out.replies.len() - before) as u64;
    if retry {
        ledger.record_retry_round(n as u64, received);
    } else {
        ledger.record_round(n as u64, received);
    }
    if out.missing.is_empty() {
        cfg.rtt
    } else {
        cfg.timeout
    }
}

/// Performs **one** scatter-gather round against `addrs`.
///
/// Loss model: with fan-out `n`, each reply is independently lost with
/// probability `min(0.9, loss_per_doubling · log2(n / knee))` for
/// `n > knee`, else 0 — negligible loss at 100-way fan-out, heavy loss at
/// 1000-way, matching the paper's observation.
pub fn scatter_gather(
    source: &mut impl StatusSource,
    addrs: &[Address],
    cfg: &TransportConfig,
    rng: &mut DetRng,
    ledger: &mut OverheadLedger,
) -> GatherOutcome {
    let mut out = GatherOutcome {
        replies: Vec::with_capacity(addrs.len()),
        missing: Vec::new(),
        first_round_missing: 0,
        rounds: 1,
        elapsed: SimDuration::ZERO,
    };
    out.elapsed = gather_round(source, addrs, cfg, rng, ledger, &mut out, false);
    out.first_round_missing = out.missing.len();
    out
}

/// Scatter-gather with bounded retries: after the first round, up to
/// `cfg.retry.max_retries` further rounds re-query **only** the hosts
/// still missing, waiting an exponentially growing backoff before each.
/// Stops early once everyone answered. The first round's queries and
/// replies land in the ledger's `status_*` counters, retry rounds in its
/// distinct `retry_*` counters (so §5.5 `status_bytes` never double-counts
/// a re-queried host); every round's duration (and each backoff) accrues
/// into `elapsed`.
pub fn scatter_gather_retry(
    source: &mut impl StatusSource,
    addrs: &[Address],
    cfg: &TransportConfig,
    rng: &mut DetRng,
    ledger: &mut OverheadLedger,
) -> GatherOutcome {
    let mut out = scatter_gather(source, addrs, cfg, rng, ledger);
    for retry in 1..=cfg.retry.max_retries {
        if out.missing.is_empty() {
            break;
        }
        let targets = std::mem::take(&mut out.missing);
        out.elapsed += cfg.retry.backoff_before_jittered(retry, rng);
        let round = gather_round(source, &targets, cfg, rng, ledger, &mut out, true);
        out.elapsed += round;
        out.rounds += 1;
    }
    out
}

/// The per-reply loss probability at fan-out `n`.
///
/// Edge cases, made explicit:
///
/// * `n == 0` — no queries are sent, so nothing can be lost: `0.0`.
/// * `knee == 0` — every positive fan-out is infinitely far beyond the
///   knee; the former `log2(n / 0) = ∞` relied on the `min` clamp by
///   accident, now it returns [`MAX_LOSS_PROBABILITY`] directly.
/// * The probability never exceeds [`MAX_LOSS_PROBABILITY`] (0.9): even
///   catastrophic incast lets some replies through.
pub fn loss_probability(n: usize, cfg: &TransportConfig) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if cfg.knee == 0 {
        return MAX_LOSS_PROBABILITY;
    }
    if n <= cfg.knee {
        0.0
    } else {
        (cfg.loss_per_doubling * (n as f64 / cfg.knee as f64).log2()).min(MAX_LOSS_PROBABILITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultySource};
    use crate::status::TableStatusSource;
    use desim::rng::stream_rng;
    use estimator::HostState;

    fn source(n: u32) -> TableStatusSource {
        let mut s = TableStatusSource::new();
        for i in 1..=n {
            s.set(Address(i), HostState::gbps_idle());
        }
        s
    }

    /// Single-round config (the paper's one-shot behaviour) so the legacy
    /// loss-shape tests are unaffected by retries.
    fn one_shot() -> TransportConfig {
        TransportConfig {
            retry: RetryPolicy::NONE,
            ..TransportConfig::default()
        }
    }

    #[test]
    fn small_fanout_is_lossless() {
        assert_eq!(loss_probability(100, &TransportConfig::default()), 0.0);
        let mut src = source(100);
        let addrs: Vec<Address> = (1..=100).map(Address).collect();
        let mut ledger = OverheadLedger::default();
        let out = scatter_gather(
            &mut src,
            &addrs,
            &TransportConfig::default(),
            &mut stream_rng(1, 0),
            &mut ledger,
        );
        assert_eq!(out.replies.len(), 100);
        assert!(out.missing.is_empty());
        assert_eq!(out.rounds, 1);
        assert_eq!(out.elapsed, TransportConfig::default().rtt);
        assert_eq!(ledger.status_bytes(), 100 * (64 + 78));
        assert_eq!(ledger.rounds, 1);
    }

    #[test]
    fn thousand_way_fanout_loses_many() {
        let cfg = one_shot();
        let p = loss_probability(1000, &cfg);
        assert!(p > 0.5, "1000-way loss probability {p}");
        let mut src = source(1000);
        let addrs: Vec<Address> = (1..=1000).map(Address).collect();
        let mut ledger = OverheadLedger::default();
        let out = scatter_gather(&mut src, &addrs, &cfg, &mut stream_rng(2, 0), &mut ledger);
        assert!(
            out.missing.len() > 300,
            "expected heavy loss, missing only {}",
            out.missing.len()
        );
        assert_eq!(out.elapsed, cfg.timeout, "stragglers trigger the timeout");
    }

    #[test]
    fn silent_hosts_are_reported_missing() {
        let mut src = source(3);
        src.silence(Address(2));
        let addrs = [Address(1), Address(2), Address(3)];
        let mut ledger = OverheadLedger::default();
        let out = scatter_gather(
            &mut src,
            &addrs,
            &TransportConfig::default(),
            &mut stream_rng(3, 0),
            &mut ledger,
        );
        assert_eq!(out.replies.len(), 2);
        assert_eq!(out.missing, vec![Address(2)]);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = one_shot();
        let addrs: Vec<Address> = (1..=500).map(Address).collect();
        let run = || {
            let mut src = source(500);
            let mut ledger = OverheadLedger::default();
            scatter_gather(&mut src, &addrs, &cfg, &mut stream_rng(7, 1), &mut ledger)
                .missing
                .len()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn loss_probability_zero_fanout_is_lossless() {
        for knee in [0, 1, 100] {
            let cfg = TransportConfig {
                knee,
                ..TransportConfig::default()
            };
            assert_eq!(loss_probability(0, &cfg), 0.0, "knee {knee}");
        }
    }

    #[test]
    fn loss_probability_zero_knee_saturates_explicitly() {
        let cfg = TransportConfig {
            knee: 0,
            ..TransportConfig::default()
        };
        for n in [1, 10, 1_000_000] {
            let p = loss_probability(n, &cfg);
            assert_eq!(p, MAX_LOSS_PROBABILITY, "n = {n}");
            assert!(p.is_finite());
        }
    }

    #[test]
    fn loss_probability_clamp_boundary() {
        let cfg = TransportConfig::default(); // knee 100, 0.25/doubling
        // 0.25 · log2(n/100) reaches 0.9 at n = 100 · 2^3.6 ≈ 1213.
        let below = loss_probability(1200, &cfg);
        assert!(below < MAX_LOSS_PROBABILITY, "1200-way {below}");
        let above = loss_probability(1300, &cfg);
        assert_eq!(above, MAX_LOSS_PROBABILITY, "clamp engaged");
        // Exactly at the knee: still lossless; one past it: positive.
        assert_eq!(loss_probability(cfg.knee, &cfg), 0.0);
        assert!(loss_probability(cfg.knee + 1, &cfg) > 0.0);
    }

    #[test]
    fn retry_recovers_stragglers_and_leaves_crashed_missing() {
        // Hosts 1-4 straggle for one round; host 5 is crashed for good.
        let mut plan = FaultPlan::none().crash(Address(5), crate::faults::Window::always());
        for i in 1..=4 {
            plan = plan.straggle(Address(i), 1);
        }
        let mut src = FaultySource::new(source(5), plan);
        let addrs: Vec<Address> = (1..=5).map(Address).collect();
        let cfg = TransportConfig::default();
        let mut ledger = OverheadLedger::default();
        let out =
            scatter_gather_retry(&mut src, &addrs, &cfg, &mut stream_rng(1, 0), &mut ledger);
        assert_eq!(out.first_round_missing, 5);
        assert_eq!(out.replies.len(), 4, "stragglers recovered on retry");
        assert_eq!(out.missing, vec![Address(5)], "crashed host stays missing");
        assert_eq!(out.rounds, 3, "two retries spent on the crashed host");
        // Elapsed: three timed-out rounds plus exponentially growing backoff.
        let expected = cfg.timeout * 3
            + cfg.retry.backoff_before(1)
            + cfg.retry.backoff_before(2);
        assert_eq!(out.elapsed, expected);
    }

    #[test]
    fn retry_stops_early_when_everyone_answered() {
        let plan = FaultPlan::none().straggle(Address(2), 1);
        let mut src = FaultySource::new(source(3), plan);
        let addrs: Vec<Address> = (1..=3).map(Address).collect();
        let mut ledger = OverheadLedger::default();
        let out = scatter_gather_retry(
            &mut src,
            &addrs,
            &TransportConfig::default(),
            &mut stream_rng(1, 0),
            &mut ledger,
        );
        assert_eq!(out.rounds, 2, "no third round once complete");
        assert!(out.missing.is_empty());
        assert_eq!(out.first_round_missing, 1);
        assert_eq!(ledger.rounds, 2);
        // Round 1 queried 3 hosts; round 2's re-send of the missing one
        // lands in the retry counters, not the first-round ones.
        assert_eq!(ledger.status_queries, 3);
        assert_eq!(ledger.status_responses, 2);
        assert_eq!(ledger.retry_queries, 1);
        assert_eq!(ledger.retry_responses, 1);
        assert_eq!(ledger.status_bytes(), 3 * 64 + 2 * 78);
        assert_eq!(ledger.retry_bytes(), 64 + 78);
    }

    #[test]
    fn ledger_accounts_bytes_and_rounds_across_retries() {
        // 1000-way fan-out with heavy loss: every retry targets only the
        // missing set, and the ledger must sum queries/replies/rounds over
        // every round, not just the first.
        let cfg = TransportConfig::default(); // 2 retries
        let addrs: Vec<Address> = (1..=1000).map(Address).collect();
        let mut src = source(1000);
        let mut ledger = OverheadLedger::default();
        let out =
            scatter_gather_retry(&mut src, &addrs, &cfg, &mut stream_rng(2, 0), &mut ledger);
        assert_eq!(out.rounds, 3, "heavy loss forces both retries");
        assert_eq!(ledger.rounds, u64::from(out.rounds));
        assert!(out.first_round_missing > 300);
        // Retry fan-out shrinks (1000 → ~840 → ~640), so the per-reply
        // loss probability drops each round and hosts keep recovering —
        // but at this scale it stays beyond the knee, so recovery is
        // partial (sampling, §4.3, remains the real fix at 1000-way).
        assert!(
            (out.missing.len() as f64) < 0.65 * out.first_round_missing as f64,
            "retries at shrinking fan-out recover hosts: {} of {} still missing",
            out.missing.len(),
            out.first_round_missing
        );
        // Exact conservation: the first round queried every host exactly
        // once; retries re-queried only missing sets, in their own bucket.
        assert_eq!(ledger.status_queries, 1000, "first round, counted once");
        assert_eq!(
            (ledger.status_responses + ledger.retry_responses) as usize,
            out.replies.len(),
            "responses sum over first-round and retry buckets"
        );
        // Retry 1 re-asked the whole first-round missing set; retry 2 only
        // what was still missing after that — strictly fewer than 2·M1.
        assert!(ledger.retry_queries as usize > out.first_round_missing);
        assert!((ledger.retry_queries as usize) < 2 * out.first_round_missing);
        assert_eq!(
            ledger.retry_responses as usize,
            out.first_round_missing - out.missing.len(),
            "every recovered host answered exactly one retry"
        );
        assert_eq!(
            ledger.status_bytes(),
            1000 * 64 + ledger.status_responses * 78
        );
        assert_eq!(
            ledger.retry_bytes(),
            ledger.retry_queries * 64 + ledger.retry_responses * 78
        );
        assert_eq!(
            ledger.total_bytes(),
            ledger.status_bytes() + ledger.retry_bytes()
        );
    }

    #[test]
    fn replies_are_sanitised_at_the_choke_point() {
        use crate::faults::Corruption;
        let plan = FaultPlan::none()
            .corrupt(Address(1), Corruption::NanUsage)
            .corrupt(Address(2), Corruption::NegativeCapacity);
        let mut src = FaultySource::new(source(3), plan);
        let addrs: Vec<Address> = (1..=3).map(Address).collect();
        let mut ledger = OverheadLedger::default();
        let out = scatter_gather(
            &mut src,
            &addrs,
            &TransportConfig::default(),
            &mut stream_rng(1, 0),
            &mut ledger,
        );
        assert_eq!(out.replies.len(), 3);
        for (addr, report) in &out.replies {
            assert!(
                report.state.is_sane(),
                "garbage leaked past the choke point for {addr:?}: {:?}",
                report.state
            );
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_before(1), SimDuration::from_millis(2));
        assert_eq!(p.backoff_before(2), SimDuration::from_millis(4));
        assert_eq!(p.backoff_before(3), SimDuration::from_millis(8));
        let huge = RetryPolicy {
            max_retries: 100,
            backoff: SimDuration::from_secs_f64(1e6),
            backoff_multiplier: u32::MAX,
            ..RetryPolicy::default()
        };
        let _ = huge.backoff_before(90); // must not overflow/panic
    }

    #[test]
    fn zero_jitter_leaves_rng_untouched_and_matches_base() {
        // jitter_pct = 0 must not consume RNG state: the stream a zero-
        // jitter retry loop sees is bit-identical to one that never heard
        // of jitter, so every pre-jitter seeded test stays stable.
        let p = RetryPolicy::default();
        let mut rng = stream_rng(5, 0);
        let before: u64 = rng.gen();
        let mut a = stream_rng(5, 0);
        assert_eq!(a.gen::<u64>(), before, "sanity: streams line up");
        for retry in 1..=4 {
            assert_eq!(
                p.backoff_before_jittered(retry, &mut a),
                p.backoff_before(retry)
            );
        }
        // The jittered calls drew nothing: the next draw still matches a
        // fresh stream advanced by exactly one gen().
        let mut b = stream_rng(5, 0);
        let _ = b.gen::<u64>();
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn jitter_is_bounded_deterministic_and_never_shortens() {
        let p = RetryPolicy {
            jitter_pct: 50,
            ..RetryPolicy::default()
        };
        let draw = |seed: u64| {
            let mut rng = stream_rng(seed, 9);
            (1..=6)
                .map(|r| p.backoff_before_jittered(r, &mut rng))
                .collect::<Vec<_>>()
        };
        let a = draw(1);
        assert_eq!(a, draw(1), "same seed, same jitter");
        assert_ne!(a, draw(2), "different seeds de-synchronize retries");
        for (i, &j) in a.iter().enumerate() {
            let base = p.backoff_before(i as u32 + 1);
            assert!(j >= base, "jitter never shortens the base backoff");
            let cap = base + SimDuration::from_nanos(base.as_nanos() / 2);
            assert!(j <= cap, "jitter bounded by jitter_pct: {j:?} > {cap:?}");
        }
    }
}
