//! Simulated UDP scatter-gather status collection (paper §4/§4.3).
//!
//! "UDP is used as transport, to minimize incast related problems … Our
//! experiments show that querying one hundred servers gives low packet
//! loss with our UDP-based solution, while for a thousand servers, there
//! is high packet loss." The per-reply loss probability here grows with
//! fan-out beyond a knee, reproducing exactly the behaviour that makes
//! sampling (§4.3) necessary.

use cloudtalk_lang::problem::Address;
use desim::rng::DetRng;
use desim::SimDuration;
use estimator::HostState;
use rand::Rng;

use crate::messages::OverheadLedger;
use crate::status::StatusSource;

/// Scatter-gather parameters.
#[derive(Clone, Copy, Debug)]
pub struct TransportConfig {
    /// Fan-out below which replies are essentially loss-free.
    pub knee: usize,
    /// Per-reply loss probability gained for each doubling beyond the knee.
    pub loss_per_doubling: f64,
    /// Time the CloudTalk server waits for stragglers before answering
    /// with whatever arrived ("waiting for a predefined amount of time,
    /// or until all responses arrive").
    pub timeout: SimDuration,
    /// Network round-trip for one status exchange under no loss.
    pub rtt: SimDuration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            knee: 100,
            loss_per_doubling: 0.25,
            timeout: SimDuration::from_millis(10),
            rtt: SimDuration::from_micros(200),
        }
    }
}

/// Result of one scatter-gather round.
#[derive(Clone, Debug)]
pub struct GatherOutcome {
    /// Replies that made it back, in query order.
    pub replies: Vec<(Address, HostState)>,
    /// Addresses that never answered (lost datagram or silent host).
    pub missing: Vec<Address>,
    /// Time the round took: full RTT when everyone answered, the timeout
    /// when somebody didn't.
    pub elapsed: SimDuration,
}

/// Performs one scatter-gather round against `addrs`.
///
/// Loss model: with fan-out `n`, each reply is independently lost with
/// probability `min(0.9, loss_per_doubling · log2(n / knee))` for
/// `n > knee`, else 0 — negligible loss at 100-way fan-out, heavy loss at
/// 1000-way, matching the paper's observation.
pub fn scatter_gather(
    source: &mut impl StatusSource,
    addrs: &[Address],
    cfg: &TransportConfig,
    rng: &mut DetRng,
    ledger: &mut OverheadLedger,
) -> GatherOutcome {
    let n = addrs.len();
    let loss_p = loss_probability(n, cfg);
    let mut replies = Vec::with_capacity(n);
    let mut missing = Vec::new();
    for &addr in addrs {
        let lost = loss_p > 0.0 && rng.gen_bool(loss_p);
        match (lost, source.poll(addr)) {
            (false, Some(state)) => replies.push((addr, state)),
            _ => missing.push(addr),
        }
    }
    ledger.record_round(n as u64, replies.len() as u64);
    let elapsed = if missing.is_empty() {
        cfg.rtt
    } else {
        cfg.timeout
    };
    GatherOutcome {
        replies,
        missing,
        elapsed,
    }
}

/// The per-reply loss probability at fan-out `n`.
pub fn loss_probability(n: usize, cfg: &TransportConfig) -> f64 {
    if n <= cfg.knee {
        0.0
    } else {
        (cfg.loss_per_doubling * (n as f64 / cfg.knee as f64).log2()).min(0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::TableStatusSource;
    use desim::rng::stream_rng;

    fn source(n: u32) -> TableStatusSource {
        let mut s = TableStatusSource::new();
        for i in 1..=n {
            s.set(Address(i), HostState::gbps_idle());
        }
        s
    }

    #[test]
    fn small_fanout_is_lossless() {
        assert_eq!(loss_probability(100, &TransportConfig::default()), 0.0);
        let mut src = source(100);
        let addrs: Vec<Address> = (1..=100).map(Address).collect();
        let mut ledger = OverheadLedger::default();
        let out = scatter_gather(
            &mut src,
            &addrs,
            &TransportConfig::default(),
            &mut stream_rng(1, 0),
            &mut ledger,
        );
        assert_eq!(out.replies.len(), 100);
        assert!(out.missing.is_empty());
        assert_eq!(out.elapsed, TransportConfig::default().rtt);
        assert_eq!(ledger.status_bytes(), 100 * (64 + 78));
    }

    #[test]
    fn thousand_way_fanout_loses_many() {
        let cfg = TransportConfig::default();
        let p = loss_probability(1000, &cfg);
        assert!(p > 0.5, "1000-way loss probability {p}");
        let mut src = source(1000);
        let addrs: Vec<Address> = (1..=1000).map(Address).collect();
        let mut ledger = OverheadLedger::default();
        let out = scatter_gather(&mut src, &addrs, &cfg, &mut stream_rng(2, 0), &mut ledger);
        assert!(
            out.missing.len() > 300,
            "expected heavy loss, missing only {}",
            out.missing.len()
        );
        assert_eq!(out.elapsed, cfg.timeout, "stragglers trigger the timeout");
    }

    #[test]
    fn silent_hosts_are_reported_missing() {
        let mut src = source(3);
        src.silence(Address(2));
        let addrs = [Address(1), Address(2), Address(3)];
        let mut ledger = OverheadLedger::default();
        let out = scatter_gather(
            &mut src,
            &addrs,
            &TransportConfig::default(),
            &mut stream_rng(3, 0),
            &mut ledger,
        );
        assert_eq!(out.replies.len(), 2);
        assert_eq!(out.missing, vec![Address(2)]);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TransportConfig::default();
        let addrs: Vec<Address> = (1..=500).map(Address).collect();
        let run = || {
            let mut src = source(500);
            let mut ledger = OverheadLedger::default();
            scatter_gather(&mut src, &addrs, &cfg, &mut stream_rng(7, 1), &mut ledger)
                .missing
                .len()
        };
        assert_eq!(run(), run());
    }
}
