//! Pseudo-reservations (paper §5.5, Figure 12).
//!
//! "When an answer is provided in response to a query, the server will
//! consider the machines it has recommended to be in use for a time t,
//! chosen sufficiently large to allow the relevant feedback to arrive from
//! status servers. During the Hadoop experiments, t was set to 300ms."
//!
//! Without this, a burst of queries all sees the same idle host and piles
//! onto it before any status feedback shows the load — the oscillation
//! that blows the 99th-percentile write time up by 10×.

use std::collections::HashMap;

use cloudtalk_lang::problem::Address;
use desim::{SimDuration, SimTime};

/// Tracks which hosts were recently recommended.
#[derive(Clone, Debug)]
pub struct ReservationTable {
    hold: SimDuration,
    expiry: HashMap<Address, SimTime>,
}

impl ReservationTable {
    /// Creates a table holding reservations for `hold` (paper: 300 ms).
    pub fn new(hold: SimDuration) -> Self {
        ReservationTable {
            hold,
            expiry: HashMap::new(),
        }
    }

    /// The configured hold time.
    pub fn hold(&self) -> SimDuration {
        self.hold
    }

    /// Marks `addrs` as in use from `now` until `now + hold`.
    pub fn reserve(&mut self, addrs: impl IntoIterator<Item = Address>, now: SimTime) {
        let until = now + self.hold;
        for addr in addrs {
            let e = self.expiry.entry(addr).or_insert(until);
            if *e < until {
                *e = until;
            }
        }
    }

    /// Whether `addr` is currently considered in use.
    pub fn is_reserved(&self, addr: Address, now: SimTime) -> bool {
        self.expiry.get(&addr).is_some_and(|&e| e > now)
    }

    /// Drops expired entries (call occasionally to bound memory).
    pub fn purge(&mut self, now: SimTime) {
        self.expiry.retain(|_, &mut e| e > now);
    }

    /// Number of live reservations at `now`.
    pub fn live_count(&self, now: SimTime) -> usize {
        self.expiry.values().filter(|&&e| e > now).count()
    }
}

impl Default for ReservationTable {
    /// The paper's 300 ms hold.
    fn default() -> Self {
        ReservationTable::new(SimDuration::from_millis(300))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_expires_after_hold() {
        let mut t = ReservationTable::default();
        let now = SimTime::from_secs_f64(1.0);
        t.reserve([Address(7)], now);
        assert!(t.is_reserved(Address(7), now));
        assert!(t.is_reserved(Address(7), now + SimDuration::from_millis(299)));
        assert!(!t.is_reserved(Address(7), now + SimDuration::from_millis(300)));
        assert!(!t.is_reserved(Address(8), now));
    }

    #[test]
    fn re_reservation_extends() {
        let mut t = ReservationTable::default();
        t.reserve([Address(1)], SimTime::ZERO);
        t.reserve([Address(1)], SimTime::from_secs_f64(0.2));
        assert!(t.is_reserved(Address(1), SimTime::from_secs_f64(0.4)));
    }

    #[test]
    fn earlier_reservation_never_shortens() {
        let mut t = ReservationTable::default();
        t.reserve([Address(1)], SimTime::from_secs_f64(1.0));
        t.reserve([Address(1)], SimTime::from_secs_f64(0.5));
        assert!(t.is_reserved(Address(1), SimTime::from_secs_f64(1.2)));
    }

    #[test]
    fn purge_drops_expired() {
        let mut t = ReservationTable::default();
        t.reserve([Address(1), Address(2)], SimTime::ZERO);
        t.purge(SimTime::from_secs_f64(10.0));
        assert_eq!(t.live_count(SimTime::from_secs_f64(10.0)), 0);
        assert!(!t.is_reserved(Address(1), SimTime::ZERO), "purged entries are gone");
    }
}
