//! Pseudo-reservations (paper §5.5, Figure 12).
//!
//! "When an answer is provided in response to a query, the server will
//! consider the machines it has recommended to be in use for a time t,
//! chosen sufficiently large to allow the relevant feedback to arrive from
//! status servers. During the Hadoop experiments, t was set to 300ms."
//!
//! Without this, a burst of queries all sees the same idle host and piles
//! onto it before any status feedback shows the load — the oscillation
//! that blows the 99th-percentile write time up by 10×.
//!
//! Hot-path costs: `reserve` is one hash insert per *distinct* address
//! (duplicates in one call collapse onto the same entry), and `purge` /
//! `live_count` are O(1) whenever nothing has expired yet, thanks to a
//! monotone *expiry frontier* — the minimum expiry across live entries.
//! The serving plane purges per query wave, so the common case must not
//! rescan the table (it used to be an O(n) retain per call).

use std::collections::HashMap;

use cloudtalk_lang::problem::Address;
use desim::{SimDuration, SimTime};

/// Tracks which hosts were recently recommended.
#[derive(Clone, Debug)]
pub struct ReservationTable {
    hold: SimDuration,
    expiry: HashMap<Address, SimTime>,
    /// Lower bound on every live entry's expiry: no entry expires before
    /// the frontier, so a purge at `now < frontier` has nothing to drop.
    /// Extending an entry can leave the frontier conservative (too low),
    /// never wrong; a full purge recomputes it exactly.
    frontier: SimTime,
}

impl ReservationTable {
    /// Creates a table holding reservations for `hold` (paper: 300 ms).
    pub fn new(hold: SimDuration) -> Self {
        ReservationTable {
            hold,
            expiry: HashMap::new(),
            frontier: SimTime::MAX,
        }
    }

    /// The configured hold time.
    pub fn hold(&self) -> SimDuration {
        self.hold
    }

    /// Marks `addrs` as in use from `now` until `now + hold`. Duplicate
    /// addresses (within one call or across calls) share one entry whose
    /// expiry only ever extends.
    pub fn reserve(&mut self, addrs: impl IntoIterator<Item = Address>, now: SimTime) {
        let until = now + self.hold;
        let mut inserted = false;
        for addr in addrs {
            let e = self.expiry.entry(addr).or_insert(until);
            if *e < until {
                *e = until;
            }
            inserted = true;
        }
        // All entries from this call expire at `until`; the frontier only
        // needs lowering when `until` undercuts it (reserving in the past
        // relative to existing holds).
        if inserted && until < self.frontier {
            self.frontier = until;
        }
    }

    /// Whether `addr` is currently considered in use.
    pub fn is_reserved(&self, addr: Address, now: SimTime) -> bool {
        if now < self.frontier {
            // Fast path: nothing in the table has expired yet, so mere
            // presence means live.
            return self.expiry.contains_key(&addr);
        }
        self.expiry.get(&addr).is_some_and(|&e| e > now)
    }

    /// Drops expired entries. O(1) while `now` is below the expiry
    /// frontier (nothing can have expired); a full O(n) sweep only runs
    /// when at least one entry is actually due, and recomputes the exact
    /// frontier for the next fast-path run.
    pub fn purge(&mut self, now: SimTime) {
        if now < self.frontier {
            return;
        }
        self.expiry.retain(|_, &mut e| e > now);
        self.frontier = self
            .expiry
            .values()
            .copied()
            .min()
            .unwrap_or(SimTime::MAX);
    }

    /// Number of live reservations at `now`. O(1) while `now` is below
    /// the expiry frontier (every entry is live).
    pub fn live_count(&self, now: SimTime) -> usize {
        if now < self.frontier {
            return self.expiry.len();
        }
        self.expiry.values().filter(|&&e| e > now).count()
    }

    /// Entries currently stored, live or not (memory accounting; `purge`
    /// brings this down to [`ReservationTable::live_count`]).
    pub fn len(&self) -> usize {
        self.expiry.len()
    }

    /// Whether the table holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.expiry.is_empty()
    }
}

impl Default for ReservationTable {
    /// The paper's 300 ms hold.
    fn default() -> Self {
        ReservationTable::new(SimDuration::from_millis(300))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `x` milliseconds past the epoch.
    fn ms(x: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(x)
    }

    #[test]
    fn reservation_expires_after_hold() {
        let mut t = ReservationTable::default();
        let now = SimTime::from_secs_f64(1.0);
        t.reserve([Address(7)], now);
        assert!(t.is_reserved(Address(7), now));
        assert!(t.is_reserved(Address(7), now + SimDuration::from_millis(299)));
        assert!(!t.is_reserved(Address(7), now + SimDuration::from_millis(300)));
        assert!(!t.is_reserved(Address(8), now));
    }

    #[test]
    fn re_reservation_extends() {
        let mut t = ReservationTable::default();
        t.reserve([Address(1)], SimTime::ZERO);
        t.reserve([Address(1)], SimTime::from_secs_f64(0.2));
        assert!(t.is_reserved(Address(1), SimTime::from_secs_f64(0.4)));
    }

    #[test]
    fn earlier_reservation_never_shortens() {
        let mut t = ReservationTable::default();
        t.reserve([Address(1)], SimTime::from_secs_f64(1.0));
        t.reserve([Address(1)], SimTime::from_secs_f64(0.5));
        assert!(t.is_reserved(Address(1), SimTime::from_secs_f64(1.2)));
    }

    #[test]
    fn purge_drops_expired() {
        let mut t = ReservationTable::default();
        t.reserve([Address(1), Address(2)], SimTime::ZERO);
        t.purge(SimTime::from_secs_f64(10.0));
        assert_eq!(t.live_count(SimTime::from_secs_f64(10.0)), 0);
        assert!(t.is_empty());
        assert!(!t.is_reserved(Address(1), SimTime::ZERO), "purged entries are gone");
    }

    #[test]
    fn duplicate_addresses_collapse_to_one_entry() {
        let mut t = ReservationTable::default();
        t.reserve([Address(3), Address(3), Address(3)], SimTime::ZERO);
        assert_eq!(t.len(), 1);
        assert_eq!(t.live_count(SimTime::ZERO), 1);
    }

    #[test]
    fn purge_below_frontier_is_a_noop() {
        let mut t = ReservationTable::default();
        t.reserve([Address(1), Address(2)], SimTime::ZERO);
        // Nothing expires before 300 ms: purge must keep both entries
        // without rescanning (observable via len()).
        t.purge(ms(100));
        assert_eq!(t.len(), 2);
        assert_eq!(t.live_count(ms(100)), 2);
    }

    #[test]
    fn frontier_recovers_after_partial_expiry() {
        let mut t = ReservationTable::default();
        t.reserve([Address(1)], SimTime::ZERO); // expires at 300 ms
        t.reserve([Address(2)], ms(500)); // expires at 800 ms
        t.purge(ms(400));
        assert_eq!(t.len(), 1, "only the first entry expired");
        assert!(t.is_reserved(Address(2), ms(600)));
        // The recomputed frontier keeps the fast path honest: a purge
        // before 800 ms drops nothing, one after drops the rest.
        t.purge(ms(700));
        assert_eq!(t.len(), 1);
        t.purge(ms(900));
        assert!(t.is_empty());
    }

    #[test]
    fn extending_keeps_stale_frontier_conservative() {
        let mut t = ReservationTable::default();
        t.reserve([Address(1)], SimTime::ZERO); // frontier 300 ms
        t.reserve([Address(1)], ms(200)); // entry now 500 ms
        // The frontier may still read 300 ms (conservative), so a purge at
        // 400 ms takes the slow path — and must keep the extended entry.
        t.purge(ms(400));
        assert!(t.is_reserved(Address(1), ms(450)));
        assert_eq!(t.live_count(ms(450)), 1);
    }
}
