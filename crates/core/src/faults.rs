//! Deterministic fault injection for the status-collection path.
//!
//! The paper's central robustness claim is that CloudTalk answers well
//! from *imperfect* data: lossy UDP scatter-gather, silent hosts "assumed
//! overloaded", and load reports that lag reality (§4, §4.3). This module
//! makes every one of those imperfections an explicit, seeded input — the
//! chaos-middleware approach of CloudSim-style simulators — so tests can
//! assert that the answer pipeline survives them:
//!
//! * **Crashed / restarting status servers** — a host answers nothing
//!   while its crash [`Window`] is open, and recovers when it closes.
//! * **Partitions** — per-host or per-rack unreachability windows; unlike
//!   a crash the host is healthy, the datagrams just never arrive.
//! * **Stragglers** — the first *k* polls of a host exceed the gather
//!   timeout (counted missing for that round); a retry recovers them.
//! * **Stale reports** — replies carry data measured `lag` ago, either by
//!   aging the live reading or by serving from a frozen
//!   [`estimator::World`] view.
//! * **Corrupted readings** — NaN, negative, or overflowed fields, which
//!   the transport's sanitisation choke point must repair.
//!
//! Everything is deterministic: a [`FaultPlan`] is plain data, and
//! [`FaultPlan::seeded`] derives one reproducibly from a `u64` seed, so a
//! failing chaos case replays bit-for-bit.

use std::collections::HashMap;

use cloudtalk_lang::problem::Address;
use desim::rng::stream_rng;
use desim::{SimDuration, SimTime};
use estimator::{HostState, World};
use rand::Rng;

use crate::status::{StatusReport, StatusSource};

/// A simulated-time interval during which a fault is active.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Window {
    from: SimTime,
    until: Option<SimTime>,
}

impl Window {
    /// A fault active for the whole run.
    pub fn always() -> Self {
        Window {
            from: SimTime::ZERO,
            until: None,
        }
    }

    /// A fault active from `from` onwards (a crash with no restart).
    pub fn starting_at(from: SimTime) -> Self {
        Window { from, until: None }
    }

    /// A fault active in `[from, until)` (a crash that restarts at
    /// `until`).
    pub fn between(from: SimTime, until: SimTime) -> Self {
        Window {
            from,
            until: Some(until),
        }
    }

    /// Whether the fault is active at `now`.
    pub fn contains(&self, now: SimTime) -> bool {
        now >= self.from && self.until.is_none_or(|u| now < u)
    }
}

/// A way a status reading can be garbage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Corruption {
    /// Transmit usage reads as NaN (a torn read of an uninitialised
    /// counter).
    NanUsage,
    /// Receive usage reads negative (a counter that wrapped backwards).
    NegativeUsage,
    /// Disk-read usage overflows far past capacity.
    OverflowedUsage,
    /// Disk-write capacity reads negative.
    NegativeCapacity,
    /// Transmit capacity reads infinite (a division by a zero interval).
    InfiniteCapacity,
}

impl Corruption {
    /// Every corruption kind, for seeded plan generation.
    pub const ALL: [Corruption; 5] = [
        Corruption::NanUsage,
        Corruption::NegativeUsage,
        Corruption::OverflowedUsage,
        Corruption::NegativeCapacity,
        Corruption::InfiniteCapacity,
    ];

    /// Applies the corruption to an otherwise honest reading.
    pub fn apply(self, mut state: HostState) -> HostState {
        match self {
            Corruption::NanUsage => state.nic_up_used = f64::NAN,
            Corruption::NegativeUsage => state.nic_down_used = -1e9,
            Corruption::OverflowedUsage => state.disk_read_used = f64::MAX,
            Corruption::NegativeCapacity => state.disk_write_capacity = -450e6,
            Corruption::InfiniteCapacity => state.nic_up_capacity = f64::INFINITY,
        }
        state
    }
}

/// Per-fault-class intensities for seeded plan generation. Each fraction
/// is the independent probability that a given host suffers that fault.
#[derive(Clone, Copy, Debug)]
pub struct FaultIntensity {
    /// Fraction of hosts whose status server is crashed (never answers).
    pub crash_frac: f64,
    /// Fraction of hosts cut off by a network partition.
    pub partition_frac: f64,
    /// Fraction of hosts whose first replies exceed the gather timeout.
    pub straggler_frac: f64,
    /// Rounds a straggler keeps missing before it answers (uniform in
    /// `1..=max_straggler_rounds`).
    pub max_straggler_rounds: u32,
    /// Fraction of hosts serving stale reports.
    pub stale_frac: f64,
    /// Age of stale reports.
    pub stale_age: SimDuration,
    /// Fraction of hosts returning corrupted readings.
    pub corrupt_frac: f64,
}

impl FaultIntensity {
    /// A mild plan: a few stragglers and stale reports, nothing fatal.
    pub fn mild() -> Self {
        FaultIntensity {
            crash_frac: 0.0,
            partition_frac: 0.0,
            straggler_frac: 0.1,
            max_straggler_rounds: 1,
            stale_frac: 0.1,
            stale_age: SimDuration::from_millis(500),
            corrupt_frac: 0.0,
        }
    }

    /// The kitchen sink: every fault class at once, at rates high enough
    /// that most answers degrade.
    pub fn chaos() -> Self {
        FaultIntensity {
            crash_frac: 0.2,
            partition_frac: 0.2,
            straggler_frac: 0.3,
            max_straggler_rounds: 4,
            stale_frac: 0.3,
            stale_age: SimDuration::from_secs_f64(5.0),
            corrupt_frac: 0.2,
        }
    }
}

impl Default for FaultIntensity {
    fn default() -> Self {
        FaultIntensity::mild()
    }
}

/// A deterministic description of every injected fault.
///
/// Build one explicitly with the `crash`/`partition`/… methods, or derive
/// one reproducibly from a seed with [`FaultPlan::seeded`]; then wrap any
/// [`StatusSource`] in a [`FaultySource`] to apply it.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    crashed: HashMap<Address, Window>,
    partitioned: HashMap<Address, Window>,
    stragglers: HashMap<Address, u32>,
    stale: HashMap<Address, SimDuration>,
    corrupt: HashMap<Address, Corruption>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Crashes `addr`'s status server during `window`.
    pub fn crash(mut self, addr: Address, window: Window) -> Self {
        self.crashed.insert(addr, window);
        self
    }

    /// Partitions `addr` away from the CloudTalk server during `window`.
    pub fn partition(mut self, addr: Address, window: Window) -> Self {
        self.partitioned.insert(addr, window);
        self
    }

    /// Partitions a whole group (e.g. every host of a rack) at once.
    pub fn partition_group(
        mut self,
        addrs: impl IntoIterator<Item = Address>,
        window: Window,
    ) -> Self {
        for a in addrs {
            self.partitioned.insert(a, window);
        }
        self
    }

    /// Makes `addr`'s first `rounds` replies exceed the gather timeout.
    pub fn straggle(mut self, addr: Address, rounds: u32) -> Self {
        self.stragglers.insert(addr, rounds);
        self
    }

    /// Makes `addr` serve reports that are `age` old.
    pub fn stale(mut self, addr: Address, age: SimDuration) -> Self {
        self.stale.insert(addr, age);
        self
    }

    /// Makes `addr` serve readings corrupted by `kind`.
    pub fn corrupt(mut self, addr: Address, kind: Corruption) -> Self {
        self.corrupt.insert(addr, kind);
        self
    }

    /// Derives a plan over `addrs` reproducibly from `seed`: each host
    /// independently rolls each fault class at the configured intensity.
    pub fn seeded(seed: u64, addrs: &[Address], intensity: &FaultIntensity) -> Self {
        let mut rng = stream_rng(seed, 0xFA17);
        let mut plan = FaultPlan::none();
        for &addr in addrs {
            if intensity.crash_frac > 0.0 && rng.gen_bool(intensity.crash_frac) {
                plan.crashed.insert(addr, Window::always());
            }
            if intensity.partition_frac > 0.0 && rng.gen_bool(intensity.partition_frac) {
                plan.partitioned.insert(addr, Window::always());
            }
            if intensity.straggler_frac > 0.0 && rng.gen_bool(intensity.straggler_frac) {
                let rounds = rng.gen_range(1..=intensity.max_straggler_rounds.max(1));
                plan.stragglers.insert(addr, rounds);
            }
            if intensity.stale_frac > 0.0 && rng.gen_bool(intensity.stale_frac) {
                plan.stale.insert(addr, intensity.stale_age);
            }
            if intensity.corrupt_frac > 0.0 && rng.gen_bool(intensity.corrupt_frac) {
                let kind = Corruption::ALL[rng.gen_range(0..Corruption::ALL.len())];
                plan.corrupt.insert(addr, kind);
            }
        }
        plan
    }

    /// Hosts that can never answer while their fault window is open at
    /// `now` (crashed or partitioned) — the set retries cannot recover.
    pub fn silenced_at(&self, now: SimTime) -> impl Iterator<Item = Address> + '_ {
        self.crashed
            .iter()
            .chain(self.partitioned.iter())
            .filter(move |(_, w)| w.contains(now))
            .map(|(&a, _)| a)
    }

    /// Whether the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.crashed.is_empty()
            && self.partitioned.is_empty()
            && self.stragglers.is_empty()
            && self.stale.is_empty()
            && self.corrupt.is_empty()
    }
}

/// A decorator applying a [`FaultPlan`] to any [`StatusSource`].
///
/// Time-dependent faults (crash/partition windows) are evaluated against
/// the time set with [`FaultySource::set_now`]; straggler faults are
/// evaluated against a per-host attempt counter, so a retry round
/// naturally recovers a straggler once its configured miss count is
/// exhausted. Stale faults serve either the inner source's reading aged
/// by the configured lag, or — when a frozen world was attached with
/// [`FaultySource::with_stale_world`] — the old reading itself.
pub struct FaultySource<S> {
    inner: S,
    plan: FaultPlan,
    now: SimTime,
    stale_view: Option<World>,
    attempts: HashMap<Address, u32>,
}

impl<S> FaultySource<S> {
    /// Wraps `inner`, applying `plan` to every poll.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultySource {
            inner,
            plan,
            now: SimTime::ZERO,
            stale_view: None,
            attempts: HashMap::new(),
        }
    }

    /// Attaches a frozen world: hosts marked stale serve *these* readings
    /// (the cluster as it used to be) instead of the live ones.
    pub fn with_stale_world(mut self, world: World) -> Self {
        self.stale_view = Some(world);
        self
    }

    /// Sets the current simulated time, against which crash/partition
    /// windows are evaluated.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// The wrapped source.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// How many polls `addr` has seen so far.
    pub fn attempts(&self, addr: Address) -> u32 {
        self.attempts.get(&addr).copied().unwrap_or(0)
    }

    /// The plan being applied.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<S: StatusSource> StatusSource for FaultySource<S> {
    fn poll(&mut self, addr: Address) -> Option<HostState> {
        self.poll_report(addr).map(|r| r.state)
    }

    fn poll_report(&mut self, addr: Address) -> Option<StatusReport> {
        let attempt = {
            let a = self.attempts.entry(addr).or_insert(0);
            *a += 1;
            *a
        };
        let now = self.now;
        if self
            .plan
            .crashed
            .get(&addr)
            .is_some_and(|w| w.contains(now))
        {
            return None;
        }
        if self
            .plan
            .partitioned
            .get(&addr)
            .is_some_and(|w| w.contains(now))
        {
            return None;
        }
        if self
            .plan
            .stragglers
            .get(&addr)
            .is_some_and(|&rounds| attempt <= rounds)
        {
            return None; // reply will arrive after the timeout: missed round
        }
        let mut report = match self.plan.stale.get(&addr) {
            Some(&lag) => match &self.stale_view {
                Some(view) if view.knows(addr) => StatusReport {
                    state: view.get(addr),
                    age: lag,
                },
                _ => {
                    let mut r = self.inner.poll_report(addr)?;
                    r.age += lag;
                    r
                }
            },
            None => self.inner.poll_report(addr)?,
        };
        if let Some(&kind) = self.plan.corrupt.get(&addr) {
            report.state = kind.apply(report.state);
        }
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::TableStatusSource;

    fn source(n: u32) -> TableStatusSource {
        let mut s = TableStatusSource::new();
        for i in 1..=n {
            s.set(Address(i), HostState::gbps_idle());
        }
        s
    }

    #[test]
    fn crash_window_silences_then_recovers() {
        let plan = FaultPlan::none().crash(
            Address(1),
            Window::between(SimTime::ZERO, SimTime::from_secs_f64(1.0)),
        );
        let mut f = FaultySource::new(source(2), plan);
        assert!(f.poll_report(Address(1)).is_none(), "crashed: silent");
        assert!(f.poll_report(Address(2)).is_some(), "others unaffected");
        f.set_now(SimTime::from_secs_f64(2.0));
        assert!(f.poll_report(Address(1)).is_some(), "restarted: answers");
    }

    #[test]
    fn partition_group_silences_whole_rack() {
        let rack: Vec<Address> = (1..=3).map(Address).collect();
        let plan = FaultPlan::none().partition_group(rack.clone(), Window::always());
        let mut f = FaultySource::new(source(6), plan);
        for a in &rack {
            assert!(f.poll_report(*a).is_none());
        }
        assert!(f.poll_report(Address(4)).is_some());
        assert_eq!(f.plan().silenced_at(SimTime::ZERO).count(), 3);
    }

    #[test]
    fn straggler_misses_then_answers_on_retry() {
        let plan = FaultPlan::none().straggle(Address(1), 2);
        let mut f = FaultySource::new(source(1), plan);
        assert!(f.poll_report(Address(1)).is_none(), "round 1 times out");
        assert!(f.poll_report(Address(1)).is_none(), "round 2 times out");
        assert!(f.poll_report(Address(1)).is_some(), "round 3 arrives");
        assert_eq!(f.attempts(Address(1)), 3);
    }

    #[test]
    fn stale_ages_live_reading_or_serves_frozen_world() {
        let lag = SimDuration::from_secs_f64(2.0);
        let plan = FaultPlan::none().stale(Address(1), lag);
        // Without a frozen world: live state, aged.
        let mut f = FaultySource::new(source(1), plan.clone());
        let r = f.poll_report(Address(1)).unwrap();
        assert_eq!(r.age, lag);
        assert_eq!(r.state, HostState::gbps_idle());
        // With one: the old reading itself.
        let old = World::uniform(&[Address(1)], HostState::gbps_idle().with_up_load(0.9));
        let mut f = FaultySource::new(source(1), plan).with_stale_world(old);
        let r = f.poll_report(Address(1)).unwrap();
        assert_eq!(r.age, lag);
        assert!(r.state.nic_up_used > 0.0, "served the frozen busy state");
    }

    #[test]
    fn corruption_kinds_each_break_sanity() {
        for kind in Corruption::ALL {
            let broken = kind.apply(HostState::gbps_idle());
            assert!(!broken.is_sane(), "{kind:?} must produce garbage");
            assert!(broken.sanitised().is_sane(), "{kind:?} must be repairable");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_scale_with_intensity() {
        let addrs: Vec<Address> = (1..=100).map(Address).collect();
        let a = FaultPlan::seeded(7, &addrs, &FaultIntensity::chaos());
        let b = FaultPlan::seeded(7, &addrs, &FaultIntensity::chaos());
        assert_eq!(a.crashed, b.crashed);
        assert_eq!(a.stragglers, b.stragglers);
        assert_eq!(a.stale, b.stale);
        assert_eq!(a.corrupt, b.corrupt);
        assert!(!a.is_empty());
        let crashed = a.crashed.len();
        assert!(
            (5..=40).contains(&crashed),
            "≈20% of 100 hosts crash, got {crashed}"
        );
        let none = FaultPlan::seeded(
            7,
            &addrs,
            &FaultIntensity {
                crash_frac: 0.0,
                partition_frac: 0.0,
                straggler_frac: 0.0,
                max_straggler_rounds: 0,
                stale_frac: 0.0,
                stale_age: SimDuration::ZERO,
                corrupt_frac: 0.0,
            },
        );
        assert!(none.is_empty());
    }
}
