//! Deterministic fault injection for the status-collection path.
//!
//! The paper's central robustness claim is that CloudTalk answers well
//! from *imperfect* data: lossy UDP scatter-gather, silent hosts "assumed
//! overloaded", and load reports that lag reality (§4, §4.3). This module
//! makes every one of those imperfections an explicit, seeded input — the
//! chaos-middleware approach of CloudSim-style simulators — so tests can
//! assert that the answer pipeline survives them:
//!
//! * **Crashed / restarting status servers** — a host answers nothing
//!   while its crash [`Window`] is open, and recovers when it closes.
//! * **Partitions** — per-host or per-rack unreachability windows; unlike
//!   a crash the host is healthy, the datagrams just never arrive.
//! * **Stragglers** — the first *k* polls of a host exceed the gather
//!   timeout (counted missing for that round); a retry recovers them.
//! * **Stale reports** — replies carry data measured `lag` ago, either by
//!   aging the live reading or by serving from a frozen
//!   [`estimator::World`] view.
//! * **Corrupted readings** — NaN, negative, or overflowed fields, which
//!   the transport's sanitisation choke point must repair.
//!
//! Everything is deterministic: a [`FaultPlan`] is plain data, and
//! [`FaultPlan::seeded`] derives one reproducibly from a `u64` seed, so a
//! failing chaos case replays bit-for-bit.

use std::collections::{BTreeMap, HashMap};

use cloudtalk_lang::problem::Address;
use desim::rng::stream_rng;
use desim::{SimDuration, SimTime};
use estimator::{HostState, World};
use rand::Rng;

use crate::aggregate::RackId;
use crate::status::{StatusReport, StatusSource};

/// A simulated-time interval during which a fault is active.
///
/// Windows are **half-open**, `[from, until)`: `from` is the first
/// faulted instant (inclusive) and `until` — when present — is the first
/// healthy instant again (exclusive; "the crash restarts *at* `until`").
/// Consequently a window with `from == until` contains no instant at all
/// ([`Window::is_empty`]), two windows `[a, b)` and `[b, c)` compose
/// without double-faulting instant `b`, and every consumer —
/// [`Window::contains`], [`FaultPlan::silenced_at`],
/// [`FaultPlan::partition_group`], the aggregator fault accessors — uses
/// these same edges.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Window {
    from: SimTime,
    until: Option<SimTime>,
}

impl Window {
    /// A fault active for the whole run.
    pub fn always() -> Self {
        Window {
            from: SimTime::ZERO,
            until: None,
        }
    }

    /// A fault active from `from` onwards (a crash with no restart).
    pub fn starting_at(from: SimTime) -> Self {
        Window { from, until: None }
    }

    /// A fault active in the half-open interval `[from, until)`: faulted
    /// at `from`, healthy again at `until` (a crash that restarts at
    /// `until`). `from == until` yields an empty window.
    pub fn between(from: SimTime, until: SimTime) -> Self {
        Window {
            from,
            until: Some(until),
        }
    }

    /// Whether the fault is active at `now`: `from <= now < until`.
    pub fn contains(&self, now: SimTime) -> bool {
        now >= self.from && self.until.is_none_or(|u| now < u)
    }

    /// Whether the window contains no instant at all (`until <= from`).
    pub fn is_empty(&self) -> bool {
        self.until.is_some_and(|u| u <= self.from)
    }

    /// Whether the window has closed by `now` (the fault is over *and*
    /// actually happened before `now` — an empty window never "ends", it
    /// never began). Restart logic keys off this edge: at `now == until`
    /// the host/aggregator is already back.
    pub fn ended_by(&self, now: SimTime) -> bool {
        !self.is_empty() && self.until.is_some_and(|u| now >= u)
    }
}

/// A way a status reading can be garbage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Corruption {
    /// Transmit usage reads as NaN (a torn read of an uninitialised
    /// counter).
    NanUsage,
    /// Receive usage reads negative (a counter that wrapped backwards).
    NegativeUsage,
    /// Disk-read usage overflows far past capacity.
    OverflowedUsage,
    /// Disk-write capacity reads negative.
    NegativeCapacity,
    /// Transmit capacity reads infinite (a division by a zero interval).
    InfiniteCapacity,
}

impl Corruption {
    /// Every corruption kind, for seeded plan generation.
    pub const ALL: [Corruption; 5] = [
        Corruption::NanUsage,
        Corruption::NegativeUsage,
        Corruption::OverflowedUsage,
        Corruption::NegativeCapacity,
        Corruption::InfiniteCapacity,
    ];

    /// Applies the corruption to an otherwise honest reading.
    pub fn apply(self, mut state: HostState) -> HostState {
        match self {
            Corruption::NanUsage => state.nic_up_used = f64::NAN,
            Corruption::NegativeUsage => state.nic_down_used = -1e9,
            Corruption::OverflowedUsage => state.disk_read_used = f64::MAX,
            Corruption::NegativeCapacity => state.disk_write_capacity = -450e6,
            Corruption::InfiniteCapacity => state.nic_up_capacity = f64::INFINITY,
        }
        state
    }
}

/// Per-fault-class intensities for seeded plan generation. Each fraction
/// is the independent probability that a given host suffers that fault.
#[derive(Clone, Copy, Debug)]
pub struct FaultIntensity {
    /// Fraction of hosts whose status server is crashed (never answers).
    pub crash_frac: f64,
    /// Fraction of hosts cut off by a network partition.
    pub partition_frac: f64,
    /// Fraction of hosts whose first replies exceed the gather timeout.
    pub straggler_frac: f64,
    /// Rounds a straggler keeps missing before it answers (uniform in
    /// `1..=max_straggler_rounds`).
    pub max_straggler_rounds: u32,
    /// Fraction of hosts serving stale reports.
    pub stale_frac: f64,
    /// Age of stale reports.
    pub stale_age: SimDuration,
    /// Fraction of hosts returning corrupted readings.
    pub corrupt_frac: f64,
}

impl FaultIntensity {
    /// A mild plan: a few stragglers and stale reports, nothing fatal.
    pub fn mild() -> Self {
        FaultIntensity {
            crash_frac: 0.0,
            partition_frac: 0.0,
            straggler_frac: 0.1,
            max_straggler_rounds: 1,
            stale_frac: 0.1,
            stale_age: SimDuration::from_millis(500),
            corrupt_frac: 0.0,
        }
    }

    /// The kitchen sink: every fault class at once, at rates high enough
    /// that most answers degrade.
    pub fn chaos() -> Self {
        FaultIntensity {
            crash_frac: 0.2,
            partition_frac: 0.2,
            straggler_frac: 0.3,
            max_straggler_rounds: 4,
            stale_frac: 0.3,
            stale_age: SimDuration::from_secs_f64(5.0),
            corrupt_frac: 0.2,
        }
    }
}

impl Default for FaultIntensity {
    fn default() -> Self {
        FaultIntensity::mild()
    }
}

/// A deterministic description of every injected fault.
///
/// Build one explicitly with the `crash`/`partition`/… methods, or derive
/// one reproducibly from a seed with [`FaultPlan::seeded`]; then wrap any
/// [`StatusSource`] in a [`FaultySource`] to apply it.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    crashed: HashMap<Address, Window>,
    partitioned: HashMap<Address, Window>,
    stragglers: HashMap<Address, u32>,
    stale: HashMap<Address, SimDuration>,
    corrupt: HashMap<Address, Corruption>,
    // Aggregator-tier faults (BTreeMaps: iterated during the sync ladder,
    // so ordering must be deterministic).
    agg_crashed: BTreeMap<RackId, Window>,
    agg_partitioned: BTreeMap<RackId, Window>,
    agg_stragglers: BTreeMap<RackId, u32>,
    agg_mid_push: BTreeMap<RackId, Window>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Crashes `addr`'s status server during `window`.
    pub fn crash(mut self, addr: Address, window: Window) -> Self {
        self.crashed.insert(addr, window);
        self
    }

    /// Partitions `addr` away from the CloudTalk server during `window`.
    pub fn partition(mut self, addr: Address, window: Window) -> Self {
        self.partitioned.insert(addr, window);
        self
    }

    /// Partitions a whole group (e.g. every host of a rack) at once.
    pub fn partition_group(
        mut self,
        addrs: impl IntoIterator<Item = Address>,
        window: Window,
    ) -> Self {
        for a in addrs {
            self.partitioned.insert(a, window);
        }
        self
    }

    /// Makes `addr`'s first `rounds` replies exceed the gather timeout.
    pub fn straggle(mut self, addr: Address, rounds: u32) -> Self {
        self.stragglers.insert(addr, rounds);
        self
    }

    /// Makes `addr` serve reports that are `age` old.
    pub fn stale(mut self, addr: Address, age: SimDuration) -> Self {
        self.stale.insert(addr, age);
        self
    }

    /// Makes `addr` serve readings corrupted by `kind`.
    pub fn corrupt(mut self, addr: Address, kind: Corruption) -> Self {
        self.corrupt.insert(addr, kind);
        self
    }

    /// Crashes `rack`'s primary aggregator during `window` (state lost;
    /// it restarts with a fresh incarnation when the window closes).
    pub fn agg_crash(mut self, rack: RackId, window: Window) -> Self {
        self.agg_crashed.insert(rack, window);
        self
    }

    /// Partitions `rack`'s primary aggregator away from the collector
    /// during `window` (the aggregator is healthy, pulls just never
    /// complete; no state is lost).
    pub fn agg_partition(mut self, rack: RackId, window: Window) -> Self {
        self.agg_partitioned.insert(rack, window);
        self
    }

    /// Makes the first `rounds` pulls of `rack`'s primary aggregator
    /// exceed the pull timeout; a retry recovers it.
    pub fn agg_straggle(mut self, rack: RackId, rounds: u32) -> Self {
        self.agg_stragglers.insert(rack, rounds);
        self
    }

    /// Crashes `rack`'s primary aggregator *mid-push* once inside
    /// `window`: the delta it was sending is delayed in flight (to be
    /// rejected later by the epoch rules) and the aggregator restarts
    /// with a fresh incarnation.
    pub fn agg_crash_mid_push(mut self, rack: RackId, window: Window) -> Self {
        self.agg_mid_push.insert(rack, window);
        self
    }

    /// Whether `rack`'s primary aggregator is crashed at `now`.
    pub fn agg_crashed_at(&self, rack: RackId, now: SimTime) -> bool {
        self.agg_crashed.get(&rack).is_some_and(|w| w.contains(now))
    }

    /// Whether `rack`'s primary aggregator is partitioned at `now`.
    pub fn agg_partitioned_at(&self, rack: RackId, now: SimTime) -> bool {
        self.agg_partitioned
            .get(&rack)
            .is_some_and(|w| w.contains(now))
    }

    /// How many pulls of `rack`'s primary aggregator straggle.
    pub fn agg_straggle_rounds(&self, rack: RackId) -> u32 {
        self.agg_stragglers.get(&rack).copied().unwrap_or(0)
    }

    /// Whether `rack`'s aggregator suffers a mid-push crash at `now`.
    pub fn agg_crash_mid_push_at(&self, rack: RackId, now: SimTime) -> bool {
        self.agg_mid_push.get(&rack).is_some_and(|w| w.contains(now))
    }

    /// The crash window configured for `rack`'s primary aggregator, if
    /// any (restart handling keys off [`Window::ended_by`]).
    pub fn agg_crash_window(&self, rack: RackId) -> Option<Window> {
        self.agg_crashed.get(&rack).copied()
    }

    /// Derives a plan over `addrs` reproducibly from `seed`: each host
    /// independently rolls each fault class at the configured intensity.
    pub fn seeded(seed: u64, addrs: &[Address], intensity: &FaultIntensity) -> Self {
        let mut rng = stream_rng(seed, 0xFA17);
        let mut plan = FaultPlan::none();
        for &addr in addrs {
            if intensity.crash_frac > 0.0 && rng.gen_bool(intensity.crash_frac) {
                plan.crashed.insert(addr, Window::always());
            }
            if intensity.partition_frac > 0.0 && rng.gen_bool(intensity.partition_frac) {
                plan.partitioned.insert(addr, Window::always());
            }
            if intensity.straggler_frac > 0.0 && rng.gen_bool(intensity.straggler_frac) {
                let rounds = rng.gen_range(1..=intensity.max_straggler_rounds.max(1));
                plan.stragglers.insert(addr, rounds);
            }
            if intensity.stale_frac > 0.0 && rng.gen_bool(intensity.stale_frac) {
                plan.stale.insert(addr, intensity.stale_age);
            }
            if intensity.corrupt_frac > 0.0 && rng.gen_bool(intensity.corrupt_frac) {
                let kind = Corruption::ALL[rng.gen_range(0..Corruption::ALL.len())];
                plan.corrupt.insert(addr, kind);
            }
        }
        plan
    }

    /// Hosts that can never answer while their fault window is open at
    /// `now` (crashed or partitioned) — the set retries cannot recover.
    /// Uses the same half-open `[from, until)` edges as
    /// [`Window::contains`]: a host whose window ends *at* `now` is not
    /// silenced. Sorted by address and deduplicated (a host both crashed
    /// and partitioned appears once), so iteration is deterministic.
    pub fn silenced_at(&self, now: SimTime) -> impl Iterator<Item = Address> {
        let mut silenced: Vec<Address> = self
            .crashed
            .iter()
            .chain(self.partitioned.iter())
            .filter(|(_, w)| w.contains(now))
            .map(|(&a, _)| a)
            .collect();
        silenced.sort_unstable_by_key(|a| a.0);
        silenced.dedup();
        silenced.into_iter()
    }

    /// Whether the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.crashed.is_empty()
            && self.partitioned.is_empty()
            && self.stragglers.is_empty()
            && self.stale.is_empty()
            && self.corrupt.is_empty()
            && self.agg_crashed.is_empty()
            && self.agg_partitioned.is_empty()
            && self.agg_stragglers.is_empty()
            && self.agg_mid_push.is_empty()
    }
}

/// A decorator applying a [`FaultPlan`] to any [`StatusSource`].
///
/// Time-dependent faults (crash/partition windows) are evaluated against
/// the time set with [`FaultySource::set_now`]; straggler faults are
/// evaluated against a per-host attempt counter, so a retry round
/// naturally recovers a straggler once its configured miss count is
/// exhausted. Stale faults serve either the inner source's reading aged
/// by the configured lag, or — when a frozen world was attached with
/// [`FaultySource::with_stale_world`] — the old reading itself.
pub struct FaultySource<S> {
    inner: S,
    plan: FaultPlan,
    now: SimTime,
    stale_view: Option<World>,
    attempts: HashMap<Address, u32>,
}

impl<S> FaultySource<S> {
    /// Wraps `inner`, applying `plan` to every poll.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultySource {
            inner,
            plan,
            now: SimTime::ZERO,
            stale_view: None,
            attempts: HashMap::new(),
        }
    }

    /// Attaches a frozen world: hosts marked stale serve *these* readings
    /// (the cluster as it used to be) instead of the live ones.
    pub fn with_stale_world(mut self, world: World) -> Self {
        self.stale_view = Some(world);
        self
    }

    /// Sets the current simulated time, against which crash/partition
    /// windows are evaluated.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// The wrapped source.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// How many polls `addr` has seen so far.
    pub fn attempts(&self, addr: Address) -> u32 {
        self.attempts.get(&addr).copied().unwrap_or(0)
    }

    /// The plan being applied.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<S: StatusSource> StatusSource for FaultySource<S> {
    fn poll(&mut self, addr: Address) -> Option<HostState> {
        self.poll_report(addr).map(|r| r.state)
    }

    fn poll_report(&mut self, addr: Address) -> Option<StatusReport> {
        let attempt = {
            let a = self.attempts.entry(addr).or_insert(0);
            *a += 1;
            *a
        };
        let now = self.now;
        if self
            .plan
            .crashed
            .get(&addr)
            .is_some_and(|w| w.contains(now))
        {
            return None;
        }
        if self
            .plan
            .partitioned
            .get(&addr)
            .is_some_and(|w| w.contains(now))
        {
            return None;
        }
        if self
            .plan
            .stragglers
            .get(&addr)
            .is_some_and(|&rounds| attempt <= rounds)
        {
            return None; // reply will arrive after the timeout: missed round
        }
        let mut report = match self.plan.stale.get(&addr) {
            Some(&lag) => match &self.stale_view {
                Some(view) if view.knows(addr) => StatusReport {
                    state: view.get(addr),
                    age: lag,
                },
                _ => {
                    let mut r = self.inner.poll_report(addr)?;
                    r.age += lag;
                    r
                }
            },
            None => self.inner.poll_report(addr)?,
        };
        if let Some(&kind) = self.plan.corrupt.get(&addr) {
            report.state = kind.apply(report.state);
        }
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::TableStatusSource;

    fn source(n: u32) -> TableStatusSource {
        let mut s = TableStatusSource::new();
        for i in 1..=n {
            s.set(Address(i), HostState::gbps_idle());
        }
        s
    }

    #[test]
    fn crash_window_silences_then_recovers() {
        let plan = FaultPlan::none().crash(
            Address(1),
            Window::between(SimTime::ZERO, SimTime::from_secs_f64(1.0)),
        );
        let mut f = FaultySource::new(source(2), plan);
        assert!(f.poll_report(Address(1)).is_none(), "crashed: silent");
        assert!(f.poll_report(Address(2)).is_some(), "others unaffected");
        f.set_now(SimTime::from_secs_f64(2.0));
        assert!(f.poll_report(Address(1)).is_some(), "restarted: answers");
    }

    #[test]
    fn window_edges_are_half_open() {
        let t = SimTime::from_secs_f64;
        let w = Window::between(t(1.0), t(2.0));
        assert!(!w.contains(t(0.5)), "before from: healthy");
        assert!(w.contains(t(1.0)), "from is inclusive");
        assert!(w.contains(t(1.999)));
        assert!(!w.contains(t(2.0)), "until is exclusive: restarted");
        assert!(!w.is_empty());
        assert!(!w.ended_by(t(1.999)));
        assert!(w.ended_by(t(2.0)), "ends exactly when healthy again");
    }

    #[test]
    fn degenerate_window_contains_nothing_and_never_ends() {
        let t = SimTime::from_secs_f64(1.0);
        let w = Window::between(t, t);
        assert!(w.is_empty());
        assert!(!w.contains(t), "from == until: no faulted instant");
        assert!(
            !w.ended_by(SimTime::from_secs_f64(9.0)),
            "a fault that never began never ends (no restart to handle)"
        );
        // And silenced_at agrees: an empty window silences nobody, even
        // at its own boundary instant.
        let plan = FaultPlan::none().crash(Address(1), w);
        assert_eq!(plan.silenced_at(t).count(), 0);
    }

    #[test]
    fn silenced_at_is_sorted_and_dedups_doubly_faulted_hosts() {
        let plan = FaultPlan::none()
            .crash(Address(3), Window::always())
            .crash(Address(1), Window::always())
            .partition(Address(3), Window::always())
            .partition(Address(2), Window::between(SimTime::ZERO, SimTime::ZERO));
        let silenced: Vec<Address> = plan.silenced_at(SimTime::ZERO).collect();
        assert_eq!(silenced, vec![Address(1), Address(3)]);
    }

    #[test]
    fn aggregator_faults_have_host_window_semantics() {
        let t = SimTime::from_secs_f64;
        let plan = FaultPlan::none()
            .agg_crash(RackId(0), Window::between(t(1.0), t(2.0)))
            .agg_partition(RackId(1), Window::always())
            .agg_straggle(RackId(2), 3)
            .agg_crash_mid_push(RackId(3), Window::starting_at(t(5.0)));
        assert!(!plan.is_empty());
        assert!(!plan.agg_crashed_at(RackId(0), t(0.5)));
        assert!(plan.agg_crashed_at(RackId(0), t(1.0)));
        assert!(!plan.agg_crashed_at(RackId(0), t(2.0)), "until exclusive");
        assert!(plan.agg_crash_window(RackId(0)).unwrap().ended_by(t(2.0)));
        assert!(plan.agg_partitioned_at(RackId(1), t(99.0)));
        assert!(!plan.agg_partitioned_at(RackId(0), t(99.0)));
        assert_eq!(plan.agg_straggle_rounds(RackId(2)), 3);
        assert_eq!(plan.agg_straggle_rounds(RackId(0)), 0);
        assert!(plan.agg_crash_mid_push_at(RackId(3), t(5.0)));
        assert!(!plan.agg_crash_mid_push_at(RackId(3), t(4.9)));
    }

    #[test]
    fn partition_group_silences_whole_rack() {
        let rack: Vec<Address> = (1..=3).map(Address).collect();
        let plan = FaultPlan::none().partition_group(rack.clone(), Window::always());
        let mut f = FaultySource::new(source(6), plan);
        for a in &rack {
            assert!(f.poll_report(*a).is_none());
        }
        assert!(f.poll_report(Address(4)).is_some());
        assert_eq!(f.plan().silenced_at(SimTime::ZERO).count(), 3);
    }

    #[test]
    fn straggler_misses_then_answers_on_retry() {
        let plan = FaultPlan::none().straggle(Address(1), 2);
        let mut f = FaultySource::new(source(1), plan);
        assert!(f.poll_report(Address(1)).is_none(), "round 1 times out");
        assert!(f.poll_report(Address(1)).is_none(), "round 2 times out");
        assert!(f.poll_report(Address(1)).is_some(), "round 3 arrives");
        assert_eq!(f.attempts(Address(1)), 3);
    }

    #[test]
    fn stale_ages_live_reading_or_serves_frozen_world() {
        let lag = SimDuration::from_secs_f64(2.0);
        let plan = FaultPlan::none().stale(Address(1), lag);
        // Without a frozen world: live state, aged.
        let mut f = FaultySource::new(source(1), plan.clone());
        let r = f.poll_report(Address(1)).unwrap();
        assert_eq!(r.age, lag);
        assert_eq!(r.state, HostState::gbps_idle());
        // With one: the old reading itself.
        let old = World::uniform(&[Address(1)], HostState::gbps_idle().with_up_load(0.9));
        let mut f = FaultySource::new(source(1), plan).with_stale_world(old);
        let r = f.poll_report(Address(1)).unwrap();
        assert_eq!(r.age, lag);
        assert!(r.state.nic_up_used > 0.0, "served the frozen busy state");
    }

    #[test]
    fn corruption_kinds_each_break_sanity() {
        for kind in Corruption::ALL {
            let broken = kind.apply(HostState::gbps_idle());
            assert!(!broken.is_sane(), "{kind:?} must produce garbage");
            assert!(broken.sanitised().is_sane(), "{kind:?} must be repairable");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_scale_with_intensity() {
        let addrs: Vec<Address> = (1..=100).map(Address).collect();
        let a = FaultPlan::seeded(7, &addrs, &FaultIntensity::chaos());
        let b = FaultPlan::seeded(7, &addrs, &FaultIntensity::chaos());
        assert_eq!(a.crashed, b.crashed);
        assert_eq!(a.stragglers, b.stragglers);
        assert_eq!(a.stale, b.stale);
        assert_eq!(a.corrupt, b.corrupt);
        assert!(!a.is_empty());
        let crashed = a.crashed.len();
        assert!(
            (5..=40).contains(&crashed),
            "≈20% of 100 hosts crash, got {crashed}"
        );
        let none = FaultPlan::seeded(
            7,
            &addrs,
            &FaultIntensity {
                crash_frac: 0.0,
                partition_frac: 0.0,
                straggler_frac: 0.0,
                max_straggler_rounds: 0,
                stale_frac: 0.0,
                stale_age: SimDuration::ZERO,
                corrupt_frac: 0.0,
            },
        );
        assert!(none.is_empty());
    }
}
