//! Hierarchical status plane: rack-level aggregators with failover
//! (ROADMAP item 2; the scale regime beyond the paper's §4.3 knee).
//!
//! Flat scatter-gather tops out near the paper's ~1000-way fan-out
//! (Figure 5): past the incast knee most replies are lost no matter how
//! many retry rounds are spent. This module splits collection into two
//! tiers, the layered datacenter/broker shape of CloudSim:
//!
//! * a [`RackAggregator`] per rack keeps a **delta-compressed,
//!   epoch-stamped partial snapshot** of its (≤ knee-sized, therefore
//!   loss-free) host set, and
//! * an [`AggregationPlane`] — the collector that lives inside the
//!   CloudTalk server process — pulls *only changed host states* from
//!   each aggregator and serves the merged fleet view through the
//!   ordinary [`StatusSource`] trait, so `Server::answer`, sampling, and
//!   freshness scoring compose unchanged.
//!
//! # Epoch rules
//!
//! Every aggregator snapshot carries an [`EpochStamp`] `(node,
//! incarnation, epoch)`: `node` identifies the aggregator process
//! (primary and standby are distinct nodes), `incarnation` counts its
//! restarts, `epoch` counts state changes within one incarnation. A
//! [`SnapshotDelta`] names the exact stamp it was computed against
//! (`base`) and the epoch it advances to (`next_epoch`); the collector's
//! [`RackView::apply_delta`] accepts it only when the base matches its
//! own stamp bit-for-bit. Everything else is handled without guessing:
//!
//! * `next_epoch <= view.epoch`, same node+incarnation — a **replayed**
//!   delta; merging is idempotent (a no-op, [`MergeOutcome::AlreadyApplied`]).
//! * different node or incarnation — a delta from **before a crash** (or
//!   from the other aggregator); rejected
//!   ([`MergeOutcome::RejectedIncarnation`]), never merged, because the
//!   restarted aggregator re-observed the world from scratch and the old
//!   delta's base state no longer exists anywhere.
//! * matching incarnation but a **gap** in epochs — rejected
//!   ([`MergeOutcome::RejectedEpochGap`]); the collector re-pulls and the
//!   aggregator answers with a full snapshot.
//!
//! A rejected pull never corrupts the view: the collector keeps serving
//! its last merged state (ages growing, so freshness decays honestly)
//! until a full snapshot re-primes it.
//!
//! # Failover ladder
//!
//! Each sync pulls every rack through an explicit ladder, faulted
//! aggregators degrading exactly as hosts do today:
//!
//! 1. **retry** the primary aggregator under the configured
//!    [`RetryPolicy`] (with seeded jitter, so a thundering herd of
//!    collectors does not re-synchronize on a recovering aggregator);
//! 2. **fail over to the standby** aggregator (its own node id and
//!    incarnation stream — the first pull after failover is a full
//!    snapshot by the epoch rules above), when configured;
//! 3. **bypass** straight to the rack's hosts with the ordinary
//!    scatter-gather transport (rack-sized fan-out, so still under the
//!    knee), when configured;
//! 4. otherwise the rack is **stale**: the view keeps serving the last
//!    merged reports with honestly growing ages, which the server's
//!    freshness decay converts into a [`crate::server::DegradationRung`]
//!    for *that rack's hosts only* — a dead aggregator costs one rack's
//!    freshness, never the query.
//!
//! Observability: the plane owns a `gather.agg.*` metrics registry
//! (pulls, retries, deltas/fulls, failover and stale-delta-rejection
//! counters) and records each sync's failover events as an `agg.sync`
//! span tree ([`AggregationPlane::last_sync_trace`]).

use std::collections::{BTreeMap, HashMap};

use cloudtalk_lang::problem::Address;
use desim::rng::{stream_rng, DetRng};
use desim::SimTime;
use obs::{CounterId, MetricsRegistry, Trace, TraceReport};

use crate::faults::FaultPlan;
use crate::messages::OverheadLedger;
use crate::status::{StatusReport, StatusSource};
use crate::transport::{scatter_gather_retry, RetryPolicy, TransportConfig};

/// Identifies one rack of the fleet (an index into the [`FleetLayout`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RackId(pub u32);

/// The fleet's host→rack assignment.
#[derive(Clone, Debug, Default)]
pub struct FleetLayout {
    racks: Vec<Vec<Address>>,
    by_addr: HashMap<Address, RackId>,
}

impl FleetLayout {
    /// Builds a layout from explicit rack membership. Hosts are sorted
    /// within each rack; an address may appear in only one rack.
    ///
    /// # Panics
    ///
    /// Panics if an address is assigned to two racks.
    pub fn grouped(racks: Vec<Vec<Address>>) -> Self {
        let mut by_addr = HashMap::new();
        let racks: Vec<Vec<Address>> = racks
            .into_iter()
            .enumerate()
            .map(|(i, mut hosts)| {
                hosts.sort_unstable_by_key(|a| a.0);
                hosts.dedup();
                for &a in &hosts {
                    let prev = by_addr.insert(a, RackId(i as u32));
                    assert!(prev.is_none(), "address {a:?} assigned to two racks");
                }
                hosts
            })
            .collect();
        FleetLayout { racks, by_addr }
    }

    /// Packs `addrs` into consecutive racks of `hosts_per_rack`.
    ///
    /// # Panics
    ///
    /// Panics if `hosts_per_rack` is zero.
    pub fn uniform(addrs: &[Address], hosts_per_rack: usize) -> Self {
        assert!(hosts_per_rack > 0, "racks must hold at least one host");
        Self::grouped(addrs.chunks(hosts_per_rack).map(<[Address]>::to_vec).collect())
    }

    /// Number of racks.
    pub fn rack_count(&self) -> usize {
        self.racks.len()
    }

    /// Total number of hosts.
    pub fn host_count(&self) -> usize {
        self.by_addr.len()
    }

    /// The hosts of `rack`, sorted by address.
    pub fn hosts(&self, rack: RackId) -> &[Address] {
        &self.racks[rack.0 as usize]
    }

    /// The rack containing `addr`, if it is part of the fleet.
    pub fn rack_of(&self, addr: Address) -> Option<RackId> {
        self.by_addr.get(&addr).copied()
    }

    /// All rack ids, in order.
    pub fn rack_ids(&self) -> impl Iterator<Item = RackId> {
        (0..self.racks.len() as u32).map(RackId)
    }
}

/// The identity of one aggregator snapshot state: which aggregator
/// process (`node`), which life of it (`incarnation`), and how many
/// state changes it has observed in this life (`epoch`).
///
/// Node `0` is reserved for "no aggregator" (an unprimed or
/// bypass-populated collector view), so a real aggregator's stamps can
/// never collide with it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EpochStamp {
    /// Aggregator process id (unique per aggregator, primaries and
    /// standbys included; 0 = no aggregator).
    pub node: u32,
    /// Restart count of that process.
    pub incarnation: u32,
    /// State-change count within the incarnation.
    pub epoch: u64,
}

/// One host entry of an aggregator's partial snapshot.
#[derive(Clone, Copy, Debug)]
struct SnapEntry {
    report: StatusReport,
    /// Epoch at which this entry last changed (for delta compression).
    changed_at: u64,
}

/// An aggregator's epoch-stamped partial snapshot of its rack.
#[derive(Clone, Debug)]
pub struct PartialSnapshot {
    /// The rack this snapshot covers.
    pub rack: RackId,
    /// Identity and version of the snapshot state.
    pub stamp: EpochStamp,
    /// When the covered hosts were last successfully re-polled; served
    /// report ages grow from this instant.
    pub fresh_as_of: SimTime,
    entries: BTreeMap<Address, SnapEntry>,
}

impl PartialSnapshot {
    fn new(rack: RackId, node: u32) -> Self {
        PartialSnapshot {
            rack,
            stamp: EpochStamp {
                node,
                incarnation: 0,
                epoch: 0,
            },
            fresh_as_of: SimTime::ZERO,
            entries: BTreeMap::new(),
        }
    }

    /// The report held for `addr`, if the host answered the last refresh.
    pub fn get(&self, addr: Address) -> Option<&StatusReport> {
        self.entries.get(&addr).map(|e| &e.report)
    }

    /// Iterates entries in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Address, &StatusReport)> {
        self.entries.iter().map(|(&a, e)| (a, &e.report))
    }

    /// Number of hosts with a live entry.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A delta-compressed update: everything that changed between two epochs
/// of one aggregator incarnation.
#[derive(Clone, Debug)]
pub struct SnapshotDelta {
    /// The rack the delta covers.
    pub rack: RackId,
    /// The exact stamp this delta was computed against; a collector may
    /// apply it only from that stamp.
    pub base: EpochStamp,
    /// The epoch the collector is at after applying (same node and
    /// incarnation as `base`).
    pub next_epoch: u64,
    /// Refresh instant of the covered hosts.
    pub fresh_as_of: SimTime,
    /// Hosts whose report changed since `base.epoch`, in address order.
    pub changed: Vec<(Address, StatusReport)>,
    /// Hosts that stopped answering since `base.epoch`, in address order.
    pub removed: Vec<Address>,
}

/// An aggregator's answer to a pull: a delta when the collector's stamp
/// is one this incarnation can diff against, otherwise a full snapshot.
#[derive(Clone, Debug)]
pub enum DeltaAnswer {
    /// Only the changed/removed hosts.
    Delta(SnapshotDelta),
    /// The whole partial snapshot (resync).
    Full(PartialSnapshot),
}

/// A rack-level aggregator: owns the delta-compressed, epoch-stamped
/// partial snapshot of one rack's hosts.
///
/// The aggregator refreshes by scatter-gathering its own (rack-sized,
/// below-the-knee) host set through the ordinary transport — host-level
/// faults injected by a [`crate::faults::FaultySource`] under it behave
/// exactly as they do against a flat collector. `epoch` advances only
/// when a refresh actually changed something, so an idle rack costs a
/// header per pull, not a body.
#[derive(Clone, Debug)]
pub struct RackAggregator {
    hosts: Vec<Address>,
    snap: PartialSnapshot,
    /// Hosts removed from the snapshot, by removal epoch. A host is in
    /// `entries` or `gone` (or never seen), never both, so this stays
    /// bounded by the rack size.
    gone: BTreeMap<Address, u64>,
    transport: TransportConfig,
    rng: DetRng,
}

impl RackAggregator {
    /// Creates an aggregator for `rack` with process id `node` (must be
    /// non-zero and unique across aggregators) over `hosts`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is zero (reserved for "no aggregator").
    pub fn new(
        rack: RackId,
        node: u32,
        hosts: Vec<Address>,
        transport: TransportConfig,
        seed: u64,
    ) -> Self {
        assert!(node != 0, "node 0 is reserved for unprimed views");
        RackAggregator {
            hosts,
            snap: PartialSnapshot::new(rack, node),
            gone: BTreeMap::new(),
            transport,
            rng: stream_rng(seed, 0xA660_0000 | u64::from(node)),
        }
    }

    /// The current snapshot stamp.
    pub fn stamp(&self) -> EpochStamp {
        self.snap.stamp
    }

    /// The hosts this aggregator covers.
    pub fn hosts(&self) -> &[Address] {
        &self.hosts
    }

    /// Re-polls every host of the rack through `source`, folding the
    /// replies into the partial snapshot. Returns `true` when anything
    /// changed (and the epoch advanced). Host-tier traffic is accounted
    /// into `ledger`'s `status_*`/`retry_*` counters.
    pub fn refresh(
        &mut self,
        source: &mut impl StatusSource,
        now: SimTime,
        ledger: &mut OverheadLedger,
    ) -> bool {
        let outcome = scatter_gather_retry(
            source,
            &self.hosts,
            &self.transport,
            &mut self.rng,
            ledger,
        );
        let next = self.snap.stamp.epoch + 1;
        let mut changed = false;
        for &(addr, report) in &outcome.replies {
            let differs = self.snap.get(addr) != Some(&report);
            if differs {
                self.snap.entries.insert(
                    addr,
                    SnapEntry {
                        report,
                        changed_at: next,
                    },
                );
                self.gone.remove(&addr);
                changed = true;
            }
        }
        for &addr in &outcome.missing {
            if self.snap.entries.remove(&addr).is_some() {
                self.gone.insert(addr, next);
                changed = true;
            }
        }
        if changed {
            self.snap.stamp.epoch = next;
        }
        self.snap.fresh_as_of = now;
        changed
    }

    /// Answers a pull from a collector at `base`: a [`SnapshotDelta`]
    /// when `base` is a stamp of this incarnation no newer than the
    /// current epoch, a full snapshot otherwise (different node,
    /// different incarnation, or a base from the future — i.e. from
    /// before a crash this incarnation knows nothing about).
    pub fn delta_since(&self, base: EpochStamp) -> DeltaAnswer {
        let cur = self.snap.stamp;
        if base.node != cur.node || base.incarnation != cur.incarnation || base.epoch > cur.epoch
        {
            return DeltaAnswer::Full(self.snap.clone());
        }
        let changed: Vec<(Address, StatusReport)> = self
            .snap
            .entries
            .iter()
            .filter(|(_, e)| e.changed_at > base.epoch)
            .map(|(&a, e)| (a, e.report))
            .collect();
        let removed: Vec<Address> = self
            .gone
            .iter()
            .filter(|(_, &at)| at > base.epoch)
            .map(|(&a, _)| a)
            .collect();
        DeltaAnswer::Delta(SnapshotDelta {
            rack: self.snap.rack,
            base,
            next_epoch: cur.epoch,
            fresh_as_of: self.snap.fresh_as_of,
            changed,
            removed,
        })
    }

    /// The full partial snapshot (a resync body).
    pub fn full(&self) -> PartialSnapshot {
        self.snap.clone()
    }

    /// Simulates a crash + restart: all in-memory state is lost, the
    /// incarnation advances, the epoch restarts from zero. Any delta
    /// computed before the crash now names a stale incarnation and will
    /// be rejected by every collector.
    pub fn restart(&mut self) {
        self.snap.stamp.incarnation += 1;
        self.snap.stamp.epoch = 0;
        self.snap.entries.clear();
        self.snap.fresh_as_of = SimTime::ZERO;
        self.gone.clear();
    }
}

/// Outcome of merging a [`SnapshotDelta`] into a [`RackView`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MergeOutcome {
    /// The delta advanced the view to `next_epoch`.
    Applied,
    /// The view already includes this delta (a replay); merging is
    /// idempotent and the view is untouched.
    AlreadyApplied,
    /// The delta names another node or a pre-crash incarnation; it is
    /// discarded untouched (stale-delta safety).
    RejectedIncarnation,
    /// The delta's base epoch does not match the view (an epoch gap —
    /// some intermediate delta was lost); a full resync is needed.
    RejectedEpochGap,
}

impl MergeOutcome {
    /// Whether the view is consistent after the merge attempt (applied
    /// or already present).
    pub fn accepted(self) -> bool {
        matches!(self, MergeOutcome::Applied | MergeOutcome::AlreadyApplied)
    }
}

/// The collector's merged view of one rack.
#[derive(Clone, Debug, Default)]
pub struct RackView {
    /// Stamp of the last merged aggregator state (node 0 when unprimed
    /// or populated by a host bypass).
    pub stamp: EpochStamp,
    /// Refresh instant of the merged data; served ages grow from here.
    pub fresh_as_of: SimTime,
    entries: BTreeMap<Address, StatusReport>,
}

impl RackView {
    /// The report held for `addr`.
    pub fn get(&self, addr: Address) -> Option<&StatusReport> {
        self.entries.get(&addr)
    }

    /// Number of hosts with a report.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view holds no reports.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates reports in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Address, &StatusReport)> {
        self.entries.iter().map(|(&a, r)| (a, r))
    }

    /// Merges `delta` under the epoch rules (see the module docs): the
    /// base stamp must match bit-for-bit; replays are idempotent no-ops;
    /// anything from another node, another incarnation, or across an
    /// epoch gap is rejected without touching the view.
    pub fn apply_delta(&mut self, delta: &SnapshotDelta) -> MergeOutcome {
        if delta.base.node != self.stamp.node
            || delta.base.incarnation != self.stamp.incarnation
        {
            return MergeOutcome::RejectedIncarnation;
        }
        if delta.next_epoch <= self.stamp.epoch
            && !(delta.next_epoch == self.stamp.epoch && delta.base.epoch == self.stamp.epoch)
        {
            return MergeOutcome::AlreadyApplied;
        }
        if delta.base.epoch != self.stamp.epoch {
            return MergeOutcome::RejectedEpochGap;
        }
        for &(addr, report) in &delta.changed {
            self.entries.insert(addr, report);
        }
        for addr in &delta.removed {
            self.entries.remove(addr);
        }
        self.stamp.epoch = delta.next_epoch;
        self.fresh_as_of = delta.fresh_as_of;
        MergeOutcome::Applied
    }

    /// Replaces the view with a full snapshot (resync / failover).
    pub fn install_full(&mut self, snap: &PartialSnapshot) {
        self.entries = snap
            .entries
            .iter()
            .map(|(&a, e)| (a, e.report))
            .collect();
        self.stamp = snap.stamp;
        self.fresh_as_of = snap.fresh_as_of;
    }

    /// Whether the view's host table equals `snap`'s, entry for entry.
    pub fn matches(&self, snap: &PartialSnapshot) -> bool {
        self.entries.len() == snap.entries.len()
            && snap.iter().all(|(a, r)| self.entries.get(&a) == Some(r))
    }
}

/// Configuration of the collector tier.
#[derive(Clone, Debug)]
pub struct PlaneConfig {
    /// Retry/backoff for collector→aggregator pulls. Jittered by default:
    /// synchronized collectors must not herd onto a recovering
    /// aggregator.
    pub retry: RetryPolicy,
    /// Maintain a standby aggregator per rack (failover rung 2). The
    /// standby is assumed to live in a different failure domain, so
    /// aggregator-scoped faults (which model the primary's rack-local
    /// deployment) do not silence it.
    pub standby: bool,
    /// Fall back to direct host scatter-gather when no aggregator
    /// answers (failover rung 3).
    pub bypass: bool,
    /// Transport for aggregator→host refreshes and for the bypass rung.
    /// Fan-out is one rack, so the default knee keeps it loss-free.
    pub host_transport: TransportConfig,
    /// Span-arena capacity of the per-sync trace.
    pub span_capacity: usize,
    /// RNG seed (pull jitter, bypass transport; aggregator streams are
    /// derived from it per node).
    pub seed: u64,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig {
            retry: RetryPolicy {
                jitter_pct: 50,
                ..RetryPolicy::default()
            },
            standby: false,
            bypass: false,
            host_transport: TransportConfig::default(),
            span_capacity: 64,
            seed: 0,
        }
    }
}

/// Handles to the plane's `gather.agg.*` metrics.
#[derive(Clone, Copy, Debug)]
struct PlaneMetricIds {
    syncs: CounterId,
    pulls: CounterId,
    pull_retries: CounterId,
    deltas_applied: CounterId,
    delta_hosts: CounterId,
    fulls_installed: CounterId,
    full_hosts: CounterId,
    stale_delta_rejected: CounterId,
    late_delta_applied: CounterId,
    failover_standby: CounterId,
    failover_bypass: CounterId,
    rack_stale: CounterId,
    restarts_observed: CounterId,
    mid_push_crashes: CounterId,
}

impl PlaneMetricIds {
    fn register(reg: &mut MetricsRegistry) -> Self {
        PlaneMetricIds {
            syncs: reg.counter("gather.agg.syncs"),
            pulls: reg.counter("gather.agg.pulls"),
            pull_retries: reg.counter("gather.agg.pull_retries"),
            deltas_applied: reg.counter("gather.agg.deltas_applied"),
            delta_hosts: reg.counter("gather.agg.delta_hosts"),
            fulls_installed: reg.counter("gather.agg.fulls_installed"),
            full_hosts: reg.counter("gather.agg.full_hosts"),
            stale_delta_rejected: reg.counter("gather.agg.stale_delta_rejected"),
            late_delta_applied: reg.counter("gather.agg.late_delta_applied"),
            failover_standby: reg.counter("gather.agg.failover_standby"),
            failover_bypass: reg.counter("gather.agg.failover_bypass"),
            rack_stale: reg.counter("gather.agg.rack_stale"),
            restarts_observed: reg.counter("gather.agg.restarts_observed"),
            mid_push_crashes: reg.counter("gather.agg.mid_push_crashes"),
        }
    }
}

/// The collector tier: one [`RackAggregator`] (plus optional standby)
/// per rack, merged [`RackView`]s, and the failover ladder. Implements
/// [`StatusSource`], so a [`crate::server::CloudTalkServer`] collects
/// through it unchanged — the server-side "transport" to a co-located
/// plane is an in-process call (pair it with
/// [`TransportConfig::local`]); the wire traffic of the hierarchy is the
/// plane's own ledger (aggregator pulls + host-tier refreshes).
pub struct AggregationPlane<S> {
    layout: FleetLayout,
    cfg: PlaneConfig,
    primaries: Vec<RackAggregator>,
    standbys: Vec<RackAggregator>,
    views: Vec<RackView>,
    source: S,
    faults: FaultPlan,
    now: SimTime,
    synced_at: Option<SimTime>,
    rng: DetRng,
    metrics: MetricsRegistry,
    ids: PlaneMetricIds,
    ledger: OverheadLedger,
    /// In-flight deltas whose push was interrupted by an aggregator
    /// crash; "delivered" (and rejected) at the start of a later sync.
    delayed: Vec<SnapshotDelta>,
    mid_push_fired: Vec<bool>,
    restart_done: Vec<bool>,
    pull_attempts: Vec<u32>,
    serving_standby: Vec<bool>,
    stale_now: Vec<bool>,
    last_trace: TraceReport,
}

impl<S: StatusSource> AggregationPlane<S> {
    /// Builds a plane over `layout`, collecting host data through
    /// `source` (wrap it in a [`crate::faults::FaultySource`] to inject
    /// host-level faults underneath the aggregators).
    pub fn new(layout: FleetLayout, source: S, cfg: PlaneConfig) -> Self {
        let n = layout.rack_count();
        let mk = |rack: usize, node_base: u32| {
            RackAggregator::new(
                RackId(rack as u32),
                node_base + rack as u32,
                layout.hosts(RackId(rack as u32)).to_vec(),
                cfg.host_transport,
                cfg.seed,
            )
        };
        let primaries: Vec<RackAggregator> = (0..n).map(|r| mk(r, 1)).collect();
        let standbys: Vec<RackAggregator> = if cfg.standby {
            (0..n).map(|r| mk(r, 1 + n as u32)).collect()
        } else {
            Vec::new()
        };
        let mut metrics = MetricsRegistry::new();
        let ids = PlaneMetricIds::register(&mut metrics);
        let rng = stream_rng(cfg.seed, 0xA66);
        AggregationPlane {
            primaries,
            standbys,
            views: vec![RackView::default(); n],
            source,
            faults: FaultPlan::none(),
            now: SimTime::ZERO,
            synced_at: None,
            rng,
            metrics,
            ids,
            ledger: OverheadLedger::default(),
            delayed: Vec::new(),
            mid_push_fired: vec![false; n],
            restart_done: vec![false; n],
            pull_attempts: vec![0; n],
            serving_standby: vec![false; n],
            stale_now: vec![false; n],
            last_trace: TraceReport::default(),
            layout,
            cfg,
        }
    }

    /// Applies aggregator-scoped faults from `plan` (`agg_*` entries;
    /// host-scoped entries of the same plan belong in a `FaultySource`
    /// wrapped around the host source).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Sets the simulated time. The next poll triggers a fresh sync.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// The fleet layout.
    pub fn layout(&self) -> &FleetLayout {
        &self.layout
    }

    /// The wrapped host-level source (tests advance fault windows here).
    pub fn source_mut(&mut self) -> &mut S {
        &mut self.source
    }

    /// The plane's `gather.agg.*` metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Cumulative wire-traffic ledger of the hierarchy: aggregator pulls
    /// (`agg_*`) plus host-tier refresh/bypass traffic
    /// (`status_*`/`retry_*`).
    pub fn ledger(&self) -> OverheadLedger {
        self.ledger
    }

    /// The span tree of the most recent sync (failover/reject events).
    pub fn last_sync_trace(&self) -> &TraceReport {
        &self.last_trace
    }

    /// The collector's merged view of `rack`.
    pub fn view(&self, rack: RackId) -> &RackView {
        &self.views[rack.0 as usize]
    }

    /// Whether `rack` is currently served by its standby aggregator.
    pub fn on_standby(&self, rack: RackId) -> bool {
        self.serving_standby[rack.0 as usize]
    }

    /// Racks whose last sync fell off the ladder entirely (no aggregator
    /// answered and bypass was unavailable): their views kept the
    /// previous data with growing ages.
    pub fn stale_racks(&self) -> Vec<RackId> {
        self.layout
            .rack_ids()
            .filter(|&r| self.stale_now[r.0 as usize])
            .collect()
    }

    /// Synchronizes the collector with the aggregator tier at `now`:
    /// delivers (and epoch-checks) any delayed deltas, then pulls every
    /// rack through the failover ladder. Idempotent per instant — polls
    /// at an already-synced `now` reuse the merged views.
    pub fn sync(&mut self, now: SimTime) {
        self.now = now;
        self.synced_at = Some(now);
        self.metrics.inc(self.ids.syncs, 1);
        let mut trace = Trace::deterministic(self.cfg.span_capacity);
        let root = trace.begin("agg.sync", now);

        // The network finally delivers deltas whose push a crash
        // interrupted. A delta that still matches its view (no successful
        // sync happened in between) merges fine; one from a pre-crash
        // incarnation must be rejected, never merged.
        for delta in std::mem::take(&mut self.delayed) {
            let view = &mut self.views[delta.rack.0 as usize];
            let outcome = view.apply_delta(&delta);
            if outcome.accepted() {
                self.metrics.inc(self.ids.late_delta_applied, 1);
            } else {
                self.metrics.inc(self.ids.stale_delta_rejected, 1);
                let span = trace.begin("agg.reject", now);
                trace.set_arg(span, "rack", u64::from(delta.rack.0));
                trace.set_arg(span, "incarnation", u64::from(delta.base.incarnation));
                trace.end(span, now);
            }
        }

        for rack in 0..self.layout.rack_count() {
            self.pull_rack(rack, now, &mut trace);
        }

        trace.end(root, now);
        self.last_trace = trace.into_report();
    }

    /// One rack through the failover ladder.
    fn pull_rack(&mut self, rack: usize, now: SimTime, trace: &mut Trace) {
        let rid = RackId(rack as u32);
        self.stale_now[rack] = false;

        // A crash window that has closed means the primary restarted with
        // empty state and a fresh incarnation (handled once per window).
        if let Some(w) = self.faults.agg_crash_window(rid) {
            if w.ended_by(now) && !self.restart_done[rack] {
                self.primaries[rack].restart();
                self.restart_done[rack] = true;
                self.metrics.inc(self.ids.restarts_observed, 1);
            }
        }

        // Rung 1: the primary, under retry/backoff with seeded jitter.
        for attempt in 0..=self.cfg.retry.max_retries {
            if attempt > 0 {
                let _backoff = self
                    .cfg
                    .retry
                    .backoff_before_jittered(attempt, &mut self.rng);
                self.metrics.inc(self.ids.pull_retries, 1);
            }
            self.pull_attempts[rack] += 1;
            self.ledger.record_agg_pull();
            self.metrics.inc(self.ids.pulls, 1);
            if self.faults.agg_crashed_at(rid, now)
                || self.faults.agg_partitioned_at(rid, now)
                || self.pull_attempts[rack] <= self.faults.agg_straggle_rounds(rid)
            {
                continue; // no reply within the timeout
            }
            self.primaries[rack].refresh(&mut self.source, now, &mut self.ledger);
            let answer = self.primaries[rack].delta_since(self.views[rack].stamp);
            if self.faults.agg_crash_mid_push_at(rid, now) && !self.mid_push_fired[rack] {
                // The reply is lost in flight and the aggregator dies
                // mid-push: its next incarnation starts empty, and the
                // in-flight delta becomes a stale-epoch straggler.
                if let DeltaAnswer::Delta(d) = answer {
                    self.delayed.push(d);
                }
                self.primaries[rack].restart();
                self.mid_push_fired[rack] = true;
                self.metrics.inc(self.ids.mid_push_crashes, 1);
                continue;
            }
            self.absorb_answer(rack, &answer);
            self.serving_standby[rack] = false;
            return;
        }

        // Rung 2: the standby aggregator (its own node/incarnation
        // stream: the first post-failover pull resyncs in full).
        if self.cfg.standby {
            let span = trace.begin("agg.failover", now);
            trace.set_arg(span, "rack", u64::from(rid.0));
            trace.set_arg(span, "rung", 2);
            self.ledger.record_agg_pull();
            self.metrics.inc(self.ids.pulls, 1);
            self.standbys[rack].refresh(&mut self.source, now, &mut self.ledger);
            let answer = self.standbys[rack].delta_since(self.views[rack].stamp);
            self.absorb_answer(rack, &answer);
            self.serving_standby[rack] = true;
            self.metrics.inc(self.ids.failover_standby, 1);
            trace.end(span, now);
            return;
        }

        // Rung 3: bypass the aggregator tier — ordinary scatter-gather
        // straight to the rack's hosts (rack-sized fan-out).
        if self.cfg.bypass {
            let span = trace.begin("agg.failover", now);
            trace.set_arg(span, "rack", u64::from(rid.0));
            trace.set_arg(span, "rung", 3);
            let outcome = scatter_gather_retry(
                &mut self.source,
                self.layout.hosts(rid),
                &self.cfg.host_transport,
                &mut self.rng,
                &mut self.ledger,
            );
            let view = &mut self.views[rack];
            view.entries = outcome.replies.iter().copied().collect();
            // Node 0: no aggregator state backs this view, so the next
            // successful aggregator pull resyncs in full.
            view.stamp = EpochStamp::default();
            view.fresh_as_of = now;
            self.metrics.inc(self.ids.failover_bypass, 1);
            trace.end(span, now);
            return;
        }

        // Rung 4: the rack is stale. Keep serving the last merged view;
        // its ages grow from fresh_as_of, so the server's freshness decay
        // degrades exactly this rack's hosts.
        let span = trace.begin("agg.stale", now);
        trace.set_arg(span, "rack", u64::from(rid.0));
        trace.end(span, now);
        self.stale_now[rack] = true;
        self.metrics.inc(self.ids.rack_stale, 1);
    }

    /// Merges an aggregator's answer into the rack view, falling back to
    /// a full install when a delta unexpectedly fails to apply.
    fn absorb_answer(&mut self, rack: usize, answer: &DeltaAnswer) {
        match answer {
            DeltaAnswer::Delta(d) => {
                self.ledger
                    .record_agg_reply(d.changed.len() as u64, d.removed.len() as u64);
                if self.views[rack].apply_delta(d).accepted() {
                    self.metrics.inc(self.ids.deltas_applied, 1);
                    self.metrics
                        .inc(self.ids.delta_hosts, d.changed.len() as u64);
                } else {
                    // Cannot happen through the pull path (the aggregator
                    // answers Full on any stamp mismatch), but a view must
                    // never be left inconsistent: resync in full.
                    let full = self.primaries[rack].full();
                    self.install_full(rack, &full);
                }
            }
            DeltaAnswer::Full(s) => self.install_full(rack, s),
        }
    }

    fn install_full(&mut self, rack: usize, snap: &PartialSnapshot) {
        self.ledger.record_agg_reply(snap.len() as u64, 0);
        self.views[rack].install_full(snap);
        self.metrics.inc(self.ids.fulls_installed, 1);
        self.metrics.inc(self.ids.full_hosts, snap.len() as u64);
    }

    fn ensure_synced(&mut self) {
        if self.synced_at != Some(self.now) {
            self.sync(self.now);
        }
    }
}

impl<S: StatusSource> StatusSource for AggregationPlane<S> {
    fn poll(&mut self, addr: Address) -> Option<estimator::HostState> {
        self.poll_report(addr).map(|r| r.state)
    }

    fn poll_report(&mut self, addr: Address) -> Option<StatusReport> {
        self.ensure_synced();
        let rack = self.layout.rack_of(addr)?;
        let view = &self.views[rack.0 as usize];
        let report = view.get(addr)?;
        Some(StatusReport {
            state: report.state,
            age: report.age + self.now.saturating_since(view.fresh_as_of),
        })
    }

    fn advance_to(&mut self, now: SimTime) {
        self.set_now(now);
    }

    fn take_sync_trace(&mut self) -> Option<TraceReport> {
        if self.last_trace.spans.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.last_trace))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultySource, Window};
    use crate::status::TableStatusSource;
    use desim::SimDuration;
    use estimator::HostState;

    fn source(n: u32) -> TableStatusSource {
        let mut s = TableStatusSource::new();
        for i in 1..=n {
            s.set(Address(i), HostState::gbps_idle());
        }
        s
    }

    fn layout_3x4() -> FleetLayout {
        FleetLayout::uniform(&(1..=12).map(Address).collect::<Vec<_>>(), 4)
    }

    #[test]
    fn layout_groups_and_looks_up() {
        let l = layout_3x4();
        assert_eq!(l.rack_count(), 3);
        assert_eq!(l.host_count(), 12);
        assert_eq!(l.hosts(RackId(1)), &[5, 6, 7, 8].map(Address));
        assert_eq!(l.rack_of(Address(6)), Some(RackId(1)));
        assert_eq!(l.rack_of(Address(99)), None);
    }

    #[test]
    fn refresh_advances_epoch_only_on_change() {
        let mut src = source(4);
        let mut agg = RackAggregator::new(
            RackId(0),
            1,
            (1..=4).map(Address).collect(),
            TransportConfig::default(),
            7,
        );
        let mut ledger = OverheadLedger::default();
        assert!(agg.refresh(&mut src, SimTime::ZERO, &mut ledger));
        assert_eq!(agg.stamp().epoch, 1);
        // Nothing changed: epoch holds, freshness still advances.
        let t1 = SimTime::from_secs_f64(1.0);
        assert!(!agg.refresh(&mut src, t1, &mut ledger));
        assert_eq!(agg.stamp().epoch, 1);
        assert_eq!(agg.full().fresh_as_of, t1);
        // One host changes: epoch advances, delta carries only it.
        src.set(Address(2), HostState::gbps_idle().with_up_load(0.5));
        let before = agg.stamp();
        assert!(agg.refresh(&mut src, t1, &mut ledger));
        match agg.delta_since(before) {
            DeltaAnswer::Delta(d) => {
                assert_eq!(d.changed.len(), 1);
                assert_eq!(d.changed[0].0, Address(2));
                assert!(d.removed.is_empty());
            }
            DeltaAnswer::Full(_) => panic!("same incarnation must diff"),
        }
    }

    #[test]
    fn delta_round_trip_reconstructs_full_snapshot() {
        let mut src = source(4);
        let mut agg = RackAggregator::new(
            RackId(0),
            1,
            (1..=4).map(Address).collect(),
            TransportConfig::default(),
            7,
        );
        let mut ledger = OverheadLedger::default();
        let mut view = RackView::default();
        agg.refresh(&mut src, SimTime::ZERO, &mut ledger);
        // Unprimed view (node 0): the aggregator answers Full.
        match agg.delta_since(view.stamp) {
            DeltaAnswer::Full(s) => view.install_full(&s),
            DeltaAnswer::Delta(_) => panic!("node mismatch must resync"),
        }
        assert!(view.matches(&agg.full()));
        // Mutate, remove, refresh; the delta catches the view up exactly.
        src.set(Address(1), HostState::gbps_idle().with_up_load(0.9));
        src.silence(Address(3));
        agg.refresh(&mut src, SimTime::from_secs_f64(1.0), &mut ledger);
        match agg.delta_since(view.stamp) {
            DeltaAnswer::Delta(d) => {
                assert_eq!(d.removed, vec![Address(3)]);
                assert_eq!(view.apply_delta(&d), MergeOutcome::Applied);
                // Replay: idempotent no-op.
                assert_eq!(view.apply_delta(&d), MergeOutcome::AlreadyApplied);
            }
            DeltaAnswer::Full(_) => panic!("expected a delta"),
        }
        assert!(view.matches(&agg.full()));
        assert!(view.get(Address(3)).is_none(), "removed host dropped");
    }

    #[test]
    fn pre_crash_delta_is_rejected_after_restart() {
        let mut src = source(4);
        let mut agg = RackAggregator::new(
            RackId(0),
            1,
            (1..=4).map(Address).collect(),
            TransportConfig::default(),
            7,
        );
        let mut ledger = OverheadLedger::default();
        let mut view = RackView::default();
        agg.refresh(&mut src, SimTime::ZERO, &mut ledger);
        let DeltaAnswer::Full(s) = agg.delta_since(view.stamp) else {
            panic!()
        };
        view.install_full(&s);
        // A delta is computed… and delayed in flight.
        src.set(Address(2), HostState::gbps_idle().with_up_load(0.4));
        agg.refresh(&mut src, SimTime::from_secs_f64(1.0), &mut ledger);
        let DeltaAnswer::Delta(delayed) = agg.delta_since(view.stamp) else {
            panic!()
        };
        // The aggregator crashes and restarts; the collector resyncs from
        // the new incarnation.
        agg.restart();
        agg.refresh(&mut src, SimTime::from_secs_f64(2.0), &mut ledger);
        let DeltaAnswer::Full(s2) = agg.delta_since(view.stamp) else {
            panic!("post-restart incarnation must resync")
        };
        view.install_full(&s2);
        let settled = view.clone();
        // The delayed pre-crash delta finally arrives: rejected, no-op.
        assert_eq!(
            view.apply_delta(&delayed),
            MergeOutcome::RejectedIncarnation
        );
        assert_eq!(view.stamp, settled.stamp);
        assert!(view.matches(&agg.full()));
    }

    #[test]
    fn epoch_gap_is_rejected_and_resynced() {
        let mut src = source(4);
        let mut agg = RackAggregator::new(
            RackId(0),
            1,
            (1..=4).map(Address).collect(),
            TransportConfig::default(),
            7,
        );
        let mut ledger = OverheadLedger::default();
        let mut view = RackView::default();
        agg.refresh(&mut src, SimTime::ZERO, &mut ledger);
        let DeltaAnswer::Full(s) = agg.delta_since(view.stamp) else {
            panic!()
        };
        view.install_full(&s);
        let old_stamp = view.stamp;
        // Two missed updates; a delta built against the *newer* epoch
        // cannot be applied onto the older view.
        src.set(Address(1), HostState::gbps_idle().with_up_load(0.3));
        agg.refresh(&mut src, SimTime::ZERO, &mut ledger);
        let mid_stamp = agg.stamp();
        src.set(Address(2), HostState::gbps_idle().with_up_load(0.6));
        agg.refresh(&mut src, SimTime::ZERO, &mut ledger);
        let DeltaAnswer::Delta(tail) = agg.delta_since(mid_stamp) else {
            panic!()
        };
        assert_eq!(view.stamp, old_stamp);
        assert_eq!(view.apply_delta(&tail), MergeOutcome::RejectedEpochGap);
        // But a delta built against the view's own stamp covers the gap.
        let DeltaAnswer::Delta(all) = agg.delta_since(view.stamp) else {
            panic!()
        };
        assert_eq!(view.apply_delta(&all), MergeOutcome::Applied);
        assert!(view.matches(&agg.full()));
    }

    #[test]
    fn plane_serves_fleet_and_is_deterministic() {
        let run = || {
            let mut plane = AggregationPlane::new(
                layout_3x4(),
                source(12),
                PlaneConfig::default(),
            );
            plane.set_now(SimTime::ZERO);
            let mut reports = Vec::new();
            for a in 1..=12 {
                reports.push(plane.poll_report(Address(a)));
            }
            (reports, plane.ledger())
        };
        let (a, la) = run();
        let (b, lb) = run();
        assert_eq!(a, b, "plane collection is deterministic");
        assert_eq!(la, lb);
        assert!(a.iter().all(Option::is_some), "whole fleet served");
        assert!(la.agg_bytes() > 0, "aggregator pulls are accounted");
        assert!(la.status_bytes() > 0, "host refreshes are accounted");
    }

    #[test]
    fn plane_second_sync_is_delta_compressed() {
        let mut plane =
            AggregationPlane::new(layout_3x4(), source(12), PlaneConfig::default());
        plane.sync(SimTime::ZERO);
        let after_warm = plane.ledger();
        // Nothing changed: the second sync ships headers only.
        plane.sync(SimTime::from_secs_f64(1.0));
        let after_idle = plane.ledger();
        assert_eq!(
            after_idle.agg_entries, after_warm.agg_entries,
            "idle sync carries zero host entries"
        );
        assert_eq!(after_idle.agg_pulls, after_warm.agg_pulls + 3);
        // One host changes: exactly one entry crosses the wire.
        plane
            .source_mut()
            .set(Address(7), HostState::gbps_idle().with_up_load(0.8));
        plane.sync(SimTime::from_secs_f64(2.0));
        let after_change = plane.ledger();
        assert_eq!(after_change.agg_entries, after_idle.agg_entries + 1);
        assert_eq!(
            plane.metrics().counter_named("gather.agg.delta_hosts"),
            Some(1)
        );
    }

    #[test]
    fn dead_rack_goes_stale_and_ages_grow() {
        let plan = FaultPlan::none().agg_crash(RackId(1), Window::always());
        let mut plane = AggregationPlane::new(layout_3x4(), source(12), PlaneConfig::default())
            .with_faults(plan);
        plane.sync(SimTime::ZERO);
        // Rack 1 never primed: its hosts are missing entirely.
        assert!(plane.poll_report(Address(5)).is_none());
        assert!(plane.poll_report(Address(1)).is_some());
        assert_eq!(plane.stale_racks(), vec![RackId(1)]);
        assert_eq!(
            plane.metrics().counter_named("gather.agg.rack_stale"),
            Some(1)
        );
    }

    #[test]
    fn crashed_rack_serves_aged_reports_from_last_view() {
        // Crash opens *after* a clean sync: the stale rung keeps serving
        // the old data with growing ages — one rack's freshness, not an
        // outage.
        let plan = FaultPlan::none().agg_crash(
            RackId(1),
            Window::starting_at(SimTime::from_secs_f64(0.5)),
        );
        let mut plane = AggregationPlane::new(layout_3x4(), source(12), PlaneConfig::default())
            .with_faults(plan);
        plane.sync(SimTime::ZERO);
        let t = SimTime::from_secs_f64(3.0);
        plane.set_now(t);
        let stale = plane.poll_report(Address(5)).expect("last view serves");
        assert_eq!(stale.age, SimDuration::from_secs_f64(3.0));
        let fresh = plane.poll_report(Address(1)).expect("healthy rack");
        assert_eq!(fresh.age, SimDuration::ZERO);
    }

    #[test]
    fn standby_failover_keeps_rack_fresh() {
        let plan = FaultPlan::none().agg_crash(RackId(0), Window::always());
        let cfg = PlaneConfig {
            standby: true,
            ..PlaneConfig::default()
        };
        let mut plane = AggregationPlane::new(layout_3x4(), source(12), cfg).with_faults(plan);
        plane.sync(SimTime::ZERO);
        assert!(plane.on_standby(RackId(0)));
        assert!(!plane.on_standby(RackId(1)));
        assert!(plane.poll_report(Address(1)).is_some());
        assert!(plane.stale_racks().is_empty());
        assert_eq!(
            plane.metrics().counter_named("gather.agg.failover_standby"),
            Some(1)
        );
        assert!(
            plane.last_sync_trace().span("agg.failover").is_some(),
            "failover recorded in the sync span tree"
        );
    }

    #[test]
    fn bypass_failover_collects_hosts_directly() {
        let plan = FaultPlan::none().agg_partition(RackId(2), Window::always());
        let cfg = PlaneConfig {
            bypass: true,
            ..PlaneConfig::default()
        };
        let mut plane = AggregationPlane::new(layout_3x4(), source(12), cfg).with_faults(plan);
        plane.sync(SimTime::ZERO);
        assert!(plane.poll_report(Address(9)).is_some());
        assert!(plane.stale_racks().is_empty());
        assert_eq!(
            plane.metrics().counter_named("gather.agg.failover_bypass"),
            Some(1)
        );
        // The bypass view is unstamped; a healed aggregator resyncs it in
        // full next sync.
        assert_eq!(plane.view(RackId(2)).stamp.node, 0);
    }

    #[test]
    fn straggling_aggregator_recovers_within_retries() {
        let plan = FaultPlan::none().agg_straggle(RackId(1), 2);
        let mut plane = AggregationPlane::new(layout_3x4(), source(12), PlaneConfig::default())
            .with_faults(plan);
        plane.sync(SimTime::ZERO);
        assert!(plane.poll_report(Address(5)).is_some());
        assert!(plane.stale_racks().is_empty());
        assert_eq!(
            plane.metrics().counter_named("gather.agg.pull_retries"),
            Some(2)
        );
    }

    #[test]
    fn crash_mid_push_rejects_late_delta_and_resyncs() {
        let w = Window::between(SimTime::from_secs_f64(0.5), SimTime::from_secs_f64(1.5));
        let plan = FaultPlan::none().agg_crash_mid_push(RackId(0), w);
        let mut plane = AggregationPlane::new(layout_3x4(), source(12), PlaneConfig::default())
            .with_faults(plan);
        plane.sync(SimTime::ZERO);
        // A change happens; the push of its delta is interrupted by the
        // crash, and the restarted (empty) incarnation serves a Full.
        plane
            .source_mut()
            .set(Address(2), HostState::gbps_idle().with_up_load(0.7));
        plane.sync(SimTime::from_secs_f64(1.0));
        assert_eq!(
            plane.metrics().counter_named("gather.agg.mid_push_crashes"),
            Some(1)
        );
        // The retry within the same sync already resynced from the new
        // incarnation, so the rack is fresh and correct.
        assert!(plane.stale_racks().is_empty());
        let r = plane.poll_report(Address(2)).expect("served");
        assert!(r.state.nic_up_used > 0.0, "post-change state visible");
        // Next sync delivers the delayed pre-crash delta: rejected.
        plane.sync(SimTime::from_secs_f64(2.0));
        assert_eq!(
            plane
                .metrics()
                .counter_named("gather.agg.stale_delta_rejected"),
            Some(1)
        );
        assert!(plane.last_sync_trace().span("agg.reject").is_some());
    }

    #[test]
    fn crash_window_close_restarts_primary_with_full_resync() {
        let w = Window::between(SimTime::from_secs_f64(0.5), SimTime::from_secs_f64(1.5));
        let plan = FaultPlan::none().agg_crash(RackId(0), w);
        let mut plane = AggregationPlane::new(layout_3x4(), source(12), PlaneConfig::default())
            .with_faults(plan);
        plane.sync(SimTime::ZERO);
        let fulls_before = plane
            .metrics()
            .counter_named("gather.agg.fulls_installed")
            .unwrap();
        // During the crash the rack is stale…
        plane.sync(SimTime::from_secs_f64(1.0));
        assert_eq!(plane.stale_racks(), vec![RackId(0)]);
        // …after the restart it resyncs in full (new incarnation).
        plane.sync(SimTime::from_secs_f64(2.0));
        assert!(plane.stale_racks().is_empty());
        assert_eq!(
            plane.metrics().counter_named("gather.agg.restarts_observed"),
            Some(1)
        );
        assert!(
            plane
                .metrics()
                .counter_named("gather.agg.fulls_installed")
                .unwrap()
                > fulls_before
        );
    }

    #[test]
    fn host_faults_under_aggregators_behave_as_flat() {
        // A crashed host inside a healthy rack: the aggregator drops it
        // from the snapshot, the plane reports it missing — identical to
        // flat collection semantics.
        let plan = FaultPlan::none().crash(Address(6), Window::always());
        let faulty = FaultySource::new(source(12), plan);
        let mut plane =
            AggregationPlane::new(layout_3x4(), faulty, PlaneConfig::default());
        plane.set_now(SimTime::ZERO);
        assert!(plane.poll_report(Address(6)).is_none());
        assert!(plane.poll_report(Address(5)).is_some());
    }
}
