//! The CloudTalk server: parse → gather → evaluate → answer (§4, Figure 2).
//!
//! One server instance runs on every physical machine; tenants connect to
//! their local one. Answering a query:
//!
//! 1. parse the query text (or accept a pre-resolved problem);
//! 2. sample candidate pools above the probe budget (§4.3);
//! 3. interrogate the status servers of every mentioned address over the
//!    scatter-gather transport; unanswered hosts are assumed overloaded;
//! 4. overlay pseudo-reservations (§5.5) so back-to-back queries do not
//!    stampede onto the same idle machines;
//! 5. run the selected evaluator (the Listing 1 heuristic by default,
//!    exhaustive search as the accuracy baseline);
//! 6. reserve the recommended machines and answer.
//!
//! Batching: a tenant submitting several queries at once (a job scheduler
//! placing a wave of tasks, the Figure-3 sweeps) should not pay one
//! scatter-gather round per query. [`CloudTalkServer::take_snapshot`]
//! gathers status once into an immutable, `Arc`-shared [`StatusSnapshot`];
//! [`CloudTalkServer::answer_batch`] evaluates a whole batch against one
//! snapshot, and [`CloudTalkServer::answer_with_snapshot`] does the same
//! for a single query when the caller manages snapshot lifetime itself.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

use cloudtalk_lang::problem::{Address, Binding, Problem, Value};
use cloudtalk_lang::{parse_query, resolve, LangError, MapResolver};
use desim::rng::{stream_rng, DetRng};
use desim::{SimDuration, SimTime};
use estimator::{HostState, World};

use obs::{
    CounterId, GaugeId, HistogramId, MetricsRegistry, MonotonicClock, NullClock, Trace,
    TraceReport,
};

use crate::exhaustive::{
    exhaustive_search_in, EvalStrategy, ExhaustiveError, ExhaustiveResult, SearchOptions,
    SearchWorkspace,
};
use crate::heuristic::{evaluate_query_scored, HeuristicConfig};
use crate::refine::refine_binding;
use crate::messages::{LedgerCounters, OverheadLedger};
use crate::pktsearch::{
    pkt_prepare, pkt_search_prepared, MirrorTopology, PktSearchError, PktSearchOptions,
};
use crate::qcache::{CacheConfig, CachedSearch, KeyParts, QueryCache, SharedMap};
use crate::reservation::ReservationTable;
use crate::sampling::{sample_candidates, DEFAULT_SAMPLE_THRESHOLD};
use crate::status::StatusSource;
use crate::transport::{scatter_gather_retry, TransportConfig};

/// Which evaluation backend answers the query.
///
/// `Hash` because the configured method is part of the answer-cache key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum EvalMethod {
    /// The Listing 1 heuristic (the paper's default for all experiments
    /// except web search).
    #[default]
    Heuristic,
    /// Brute force over all bindings, scored by the flow-level estimator.
    Exhaustive {
        /// Maximum bindings to try before refusing.
        limit: u64,
    },
    /// Enumerate all bindings at *packet* fidelity over the provider's
    /// mirror topology ([`ServerConfig::pkt`]), picking the minimum
    /// simulated makespan. The paper's backend for incast-dominated
    /// queries (§5.4 web search) that the flow-level estimator cannot
    /// score — drops and RTOs are invisible to it.
    PacketLevel {
        /// Maximum bindings to try before refusing.
        limit: u64,
    },
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Scatter-gather transport parameters (including retry/backoff).
    pub transport: TransportConfig,
    /// Heuristic parameters (weight `W`, priority binding).
    pub heuristic: HeuristicConfig,
    /// Candidate-pool size above which sampling kicks in, and the sample
    /// size used (§4.3; the paper samples 19 of 300 in §5.2).
    pub sample_budget: usize,
    /// Pseudo-reservation hold time (§5.5; `None` disables — the "Osc"
    /// configuration of Figure 12).
    pub reservation_hold: Option<SimDuration>,
    /// Evaluation backend.
    pub method: EvalMethod,
    /// Candidate evaluation strategy for the exhaustive backend (and any
    /// configured heuristic refiner). `Delta` re-rates only the resource
    /// components a candidate moved and is bit-identical to `Scratch` —
    /// the default, since it only trades CPU for the same answer.
    pub eval_strategy: EvalStrategy,
    /// Whether to gather dynamic status data; with `false`, evaluation
    /// sees idle hosts everywhere (static/topology-only mode, §4).
    pub use_dynamic: bool,
    /// Graceful-degradation ladder parameters.
    pub degradation: DegradationConfig,
    /// Packet-level backend parameters (only used by
    /// [`EvalMethod::PacketLevel`]).
    pub pkt: PktBackendConfig,
    /// Observability: per-query span tracing and host-timer selection.
    pub obs: ObsConfig,
    /// The canonical answer cache ([`crate::qcache`]): per-worker L1
    /// plus (under the serving plane) a shared L2. Keyed on the exact
    /// post-sampling problem, snapshot epoch, footprint-restricted
    /// reservation mask, rung, shed flag, and backend config — a hit is
    /// bit-identical to the miss it replaces.
    pub cache: CacheConfig,
    /// RNG seed for sampling and transport loss.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            transport: TransportConfig::default(),
            heuristic: HeuristicConfig::default(),
            sample_budget: DEFAULT_SAMPLE_THRESHOLD,
            reservation_hold: Some(SimDuration::from_millis(300)),
            method: EvalMethod::Heuristic,
            eval_strategy: EvalStrategy::Delta,
            use_dynamic: true,
            degradation: DegradationConfig::default(),
            pkt: PktBackendConfig::default(),
            obs: ObsConfig::default(),
            cache: CacheConfig::default(),
            seed: 0,
        }
    }
}

/// Observability configuration for a server.
///
/// The default records every answer's span tree with the deterministic
/// [`obs::NullClock`] (host timestamps all zero), so answers — including
/// their provenance — compare equal across identical runs. Benches enable
/// `host_timer` to see real per-phase durations; latency-critical setups
/// disable `tracing` entirely, which makes every span operation a no-op
/// and leaves an empty [`obs::TraceReport`] in the answer.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Record per-query spans (collect → sanitise → search → bind).
    pub tracing: bool,
    /// Stamp spans with a real monotonic host timer instead of the
    /// deterministic null clock. Host timestamps become run-dependent;
    /// simulated timestamps stay deterministic either way.
    pub host_timer: bool,
    /// Span-arena capacity per query. Spans beyond this are counted in
    /// [`obs::TraceReport::dropped`], never allocated.
    pub span_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            tracing: true,
            host_timer: false,
            span_capacity: 16,
        }
    }
}

/// Configuration of the packet-level search backend.
///
/// The backend evaluates bindings against the provider's simulated
/// *mirror* of its datacenter, not against gathered status data — packet
/// simulation models the query's own traffic on the mirrored fabric
/// (which is how the paper answers the web-search placement). Status
/// freshness still gates it: on degraded rungs the server answers with
/// the heuristic instead, exactly as it does for [`EvalMethod::Exhaustive`].
#[derive(Clone, Debug)]
pub struct PktBackendConfig {
    /// The mirror topology. `Arc`-shared: one mirror serves every query
    /// (and every server clone). `None` fails `PacketLevel` queries with
    /// [`ServerError::MirrorMissing`].
    pub mirror: Option<Arc<MirrorTopology>>,
    /// Packet-simulator parameters.
    pub sim: pktsim::SimConfig,
    /// Worker threads for the binding fan-out.
    pub threads: usize,
    /// Share simulation results across symmetry-equivalent bindings.
    pub memoise: bool,
    /// Abandon simulations that can no longer beat the incumbent.
    pub early_abort: bool,
}

impl Default for PktBackendConfig {
    fn default() -> Self {
        PktBackendConfig {
            mirror: None,
            sim: pktsim::SimConfig::default(),
            threads: 1,
            memoise: true,
            early_abort: true,
        }
    }
}

/// Which rung of the graceful-degradation ladder answered a query.
///
/// The ladder trades answer quality for robustness as the gathered status
/// data degrades; the chosen rung is reported in the [`Answer`] so callers
/// (and chaos tests) can observe degradation instead of silently absorbing
/// skewed placements.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DegradationRung {
    /// Enough fresh data: the configured evaluation backend runs on the
    /// full snapshot.
    Full,
    /// Partially degraded: the heuristic runs against only the *fresh*
    /// subset of reports; stale/missing hosts count as overloaded. The
    /// exhaustive backend is never used here — with mostly-pessimistic
    /// inputs it can find no feasible binding, while the heuristic always
    /// completes.
    FreshSubset,
    /// Collection effectively failed: a static assume-busy fallback — every
    /// host pessimistic, the heuristic picks deterministically among
    /// equals. The answer is valid but blind; callers seeing this rung
    /// should treat the recommendation as a tie-break, not a measurement.
    AssumeBusy,
}

impl std::fmt::Display for DegradationRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradationRung::Full => write!(f, "full"),
            DegradationRung::FreshSubset => write!(f, "fresh-subset"),
            DegradationRung::AssumeBusy => write!(f, "assume-busy"),
        }
    }
}

/// Parameters of the graceful-degradation ladder.
#[derive(Clone, Copy, Debug)]
pub struct DegradationConfig {
    /// Staleness-decay half-life: a report `half_life` old contributes 0.5
    /// to the freshness score, `2·half_life` contributes 0.25, and so on.
    /// Missing hosts contribute 0.
    pub half_life: SimDuration,
    /// Reports older than this are excluded from the fresh subset on the
    /// [`DegradationRung::FreshSubset`] rung.
    pub fresh_max_age: SimDuration,
    /// Freshness score at or above which the full backend runs.
    pub full_threshold: f64,
    /// Freshness score below which even the fresh subset is too thin and
    /// the assume-busy fallback answers.
    pub fallback_threshold: f64,
    /// With `strict`, a query that would fall to
    /// [`DegradationRung::AssumeBusy`] fails with
    /// [`ServerError::TooStale`] instead — for callers that would rather
    /// retry later than act on a blind recommendation.
    pub strict: bool,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            half_life: SimDuration::from_millis(500),
            fresh_max_age: SimDuration::from_secs_f64(1.0),
            full_threshold: 0.7,
            fallback_threshold: 0.2,
            strict: false,
        }
    }
}

impl DegradationConfig {
    /// The staleness-decay weight of one report of the given age.
    pub fn decay(&self, age: SimDuration) -> f64 {
        if self.half_life == SimDuration::ZERO {
            return if age == SimDuration::ZERO { 1.0 } else { 0.0 };
        }
        0.5_f64.powf(age.as_secs_f64() / self.half_life.as_secs_f64())
    }

    /// Selects the ladder rung for a snapshot freshness score.
    pub fn rung_for(&self, freshness: f64) -> DegradationRung {
        if freshness >= self.full_threshold {
            DegradationRung::Full
        } else if freshness >= self.fallback_threshold {
            DegradationRung::FreshSubset
        } else {
            DegradationRung::AssumeBusy
        }
    }
}

/// Modelled per-query processing overheads (paper §5.1: "around 0.45ms on
/// average to answer one query: of these, 0.32ms are spent in parsing …
/// 0.13ms running our query evaluation algorithm"). Used to report
/// simulated response times; the benches measure the real thing.
pub const MODELLED_PARSE_TIME: SimDuration = SimDuration::from_micros(320);
/// Modelled heuristic evaluation time.
pub const MODELLED_EVAL_TIME: SimDuration = SimDuration::from_micros(130);

/// Which evaluation backend actually produced a binding (reported in
/// [`Provenance`]; degraded rungs force [`Backend::Heuristic`] regardless
/// of the configured [`EvalMethod`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// The Listing 1 heuristic.
    Heuristic,
    /// Branch-and-bound exhaustive search over the flow-level estimator.
    Exhaustive,
    /// Packet-level enumeration over the mirror topology.
    PacketLevel,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Heuristic => write!(f, "heuristic"),
            Backend::Exhaustive => write!(f, "exhaustive"),
            Backend::PacketLevel => write!(f, "packet-level"),
        }
    }
}

/// How much of the binding space the search backend actually visited.
///
/// Semantics per backend: the heuristic scores every candidate of every
/// variable once (`enumerated` = Σ pool sizes, nothing pruned); the
/// exhaustive backend counts estimator calls in `enumerated` and
/// lower-bound subtree cuts in `pruned`; the packet-level backend counts
/// completed simulations in `enumerated`, deadline-abandoned ones in
/// `aborted`, and symmetry-cache answers in `memo_hits`/`memo_misses`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Upper bound on the binding space (product of candidate-pool sizes,
    /// saturating; distinctness constraints may make the real space
    /// smaller).
    pub space: u64,
    /// Candidates/bindings actually evaluated.
    pub enumerated: u64,
    /// Subtrees cut by the exhaustive lower bound (0 for other backends).
    pub pruned: u64,
    /// Packet simulations abandoned by the incumbent deadline.
    pub aborted: u64,
    /// Bindings answered from the packet-search symmetry cache.
    pub memo_hits: u64,
    /// Bindings the packet search had to simulate (memoisation on only).
    pub memo_misses: u64,
    /// Resource components the delta evaluator re-rated (0 unless
    /// [`EvalStrategy::Delta`] actually ran).
    pub delta_components_rerated: u64,
    /// Resource components the delta evaluator replayed from its cache.
    pub delta_components_reused: u64,
    /// Flow endpoint moves the delta evaluator applied.
    pub delta_flows_moved: u64,
    /// High-water depth of the delta evaluator's undo log.
    pub delta_max_undo_depth: u64,
}

/// Structured provenance of one answer: which rung and backend produced
/// it, how much search work ran, what the gather cost, which hosts were
/// distrusted, and the per-phase span tree
/// (`answer` ⊃ `collect` → `sanitise` → `search` → `bind`).
///
/// With the default [`ObsConfig`] this is fully deterministic — identical
/// runs produce identical (`PartialEq`-comparable) provenance.
///
/// `PartialEq` is implemented manually to exclude [`Provenance::cache_hit`]:
/// whether an answer came from the cache depends on worker count and wave
/// scheduling (a query may hit one worker's L1 in one run and miss in
/// another), while everything *else* in the answer is bit-identical by the
/// determinism contract. Comparing provenance therefore compares what was
/// answered, not where the bytes happened to be found.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// Which rung of the degradation ladder answered.
    pub rung: DegradationRung,
    /// The backend that produced the binding (the configured method on
    /// [`DegradationRung::Full`], otherwise the heuristic).
    pub backend: Backend,
    /// Search-effort counters.
    pub search: SearchStats,
    /// Scatter-gather rounds behind this answer's snapshot.
    pub gather_rounds: u32,
    /// First-round status bytes of the gather behind this answer's
    /// snapshot (shared across a batch answered from one snapshot; 0 for
    /// static snapshots).
    pub status_bytes: u64,
    /// Retry-round bytes of the same gather (kept separate so retries
    /// never double-count the §5.5 figure).
    pub retry_bytes: u64,
    /// Hosts whose reports existed but were dropped for staleness on the
    /// [`DegradationRung::FreshSubset`] rung, sorted by address. Empty on
    /// other rungs ([`DegradationRung::Full`] trusts everything,
    /// [`DegradationRung::AssumeBusy`] trusts nothing).
    pub stale_dropped: Vec<Address>,
    /// Whether the serving plane's load-shedding rung forced the
    /// heuristic backend for this answer: the plane was over its backlog
    /// bound, so the configured (more expensive) method was skipped to
    /// protect latency. Always `false` on the single-server path. Unlike
    /// a degraded [`Provenance::rung`], shedding says nothing about data
    /// quality — the snapshot freshness is whatever `rung` reports.
    pub shed: bool,
    /// Whether this answer was replayed from the answer cache instead of
    /// re-running the search. Excluded from `PartialEq` (see the type
    /// docs): cache placement is scheduling-dependent, the answer is not.
    pub cache_hit: bool,
    /// The per-phase span tree.
    pub trace: TraceReport,
}

impl PartialEq for Provenance {
    fn eq(&self, other: &Self) -> bool {
        self.rung == other.rung
            && self.backend == other.backend
            && self.search == other.search
            && self.gather_rounds == other.gather_rounds
            && self.status_bytes == other.status_bytes
            && self.retry_bytes == other.retry_bytes
            && self.stale_dropped == other.stale_dropped
            && self.shed == other.shed
            && self.trace == other.trace
    }
}

/// The server's reply.
#[derive(Clone, Debug, PartialEq)]
pub struct Answer {
    /// One value per query variable.
    pub binding: Binding,
    /// Fitness score of each bound value (same order as `binding`;
    /// `f64::INFINITY` when the variable's placement is unconstrained).
    /// Clients may use these to judge recommendation quality (§5.3's
    /// "its fitness is evaluated after receiving a response").
    pub binding_scores: Vec<f64>,
    /// Modelled time from query receipt to reply.
    pub response_time: SimDuration,
    /// Whether candidate pools were sampled down.
    pub sampled: bool,
    /// Status servers interrogated.
    pub interrogated: usize,
    /// Status servers that did not answer (after retries).
    pub missing: usize,
    /// Scatter-gather rounds spent (1 = no retries needed).
    pub gather_rounds: u32,
    /// Freshness score of the snapshot that produced this answer
    /// (1 = every host reported fresh data, 0 = nothing usable).
    pub freshness: f64,
    /// Which rung of the degradation ladder produced the answer.
    pub rung: DegradationRung,
    /// Structured provenance: backend, search effort, gather cost,
    /// stale-host list, and the per-phase span tree.
    pub provenance: Provenance,
}

/// Why a query failed.
#[derive(Debug)]
pub enum ServerError {
    /// The query text did not parse or resolve.
    Language(LangError),
    /// Exhaustive evaluation failed.
    Exhaustive(ExhaustiveError),
    /// Packet-level search failed.
    PktSearch(PktSearchError),
    /// A `PacketLevel` query arrived but no mirror topology is configured.
    MirrorMissing,
    /// A variable has an empty candidate pool: no binding can exist.
    EmptyCandidates {
        /// Name of the offending variable.
        var: String,
    },
    /// Status data was too stale to answer and the degradation config is
    /// strict (the assume-busy fallback is disabled).
    TooStale {
        /// The snapshot's freshness score.
        freshness: f64,
    },
    /// The serving plane refused admission: the tenant's bounded queue is
    /// full (or the plane's backlog exceeds its admission bound). The
    /// query was **not** evaluated; retry no earlier than `retry_after`
    /// from the rejected arrival time.
    Overloaded {
        /// Backpressure hint: how long the tenant should wait before
        /// resubmitting.
        retry_after: SimDuration,
    },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Language(e) => write!(f, "query error: {e}"),
            ServerError::Exhaustive(e) => write!(f, "exhaustive evaluation failed: {e}"),
            ServerError::PktSearch(e) => write!(f, "packet-level search failed: {e}"),
            ServerError::MirrorMissing => {
                write!(f, "packet-level method requires a mirror topology")
            }
            ServerError::EmptyCandidates { var } => {
                write!(f, "variable '{var}' has an empty candidate pool")
            }
            ServerError::TooStale { freshness } => write!(
                f,
                "status data too stale to answer (freshness {freshness:.2}, strict mode)"
            ),
            ServerError::Overloaded { retry_after } => write!(
                f,
                "serving plane overloaded; retry after {:.1} ms",
                retry_after.as_millis_f64()
            ),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<LangError> for ServerError {
    fn from(e: LangError) -> Self {
        ServerError::Language(e)
    }
}

/// Handles to the server's own registered metrics.
#[derive(Clone, Copy, Debug)]
struct ServerMetricIds {
    queries: CounterId,
    rung_full: CounterId,
    rung_fresh_subset: CounterId,
    rung_assume_busy: CounterId,
    gather_rounds: HistogramId,
    freshness: HistogramId,
    delta_components_rerated: CounterId,
    delta_components_reused: CounterId,
    delta_flows_moved: CounterId,
    delta_undo_depth: HistogramId,
    shed: CounterId,
    cache_hit: CounterId,
    cache_miss: CounterId,
    cache_l1_hit: CounterId,
    cache_l2_hit: CounterId,
    cache_stale_hit: CounterId,
    cache_artifact_hit: CounterId,
    cache_artifact_miss: CounterId,
    cache_entries: GaugeId,
    cache_bytes: GaugeId,
}

impl ServerMetricIds {
    fn register(reg: &mut MetricsRegistry) -> Self {
        ServerMetricIds {
            queries: reg.counter("server.queries_answered"),
            rung_full: reg.counter("server.rung_full"),
            rung_fresh_subset: reg.counter("server.rung_fresh_subset"),
            rung_assume_busy: reg.counter("server.rung_assume_busy"),
            gather_rounds: reg.histogram("server.gather_rounds", &[1.0, 2.0, 3.0, 4.0]),
            freshness: reg.histogram("server.freshness", &[0.25, 0.5, 0.75, 1.0]),
            delta_components_rerated: reg.counter("estimator.delta.components_rerated"),
            delta_components_reused: reg.counter("estimator.delta.components_reused"),
            delta_flows_moved: reg.counter("estimator.delta.flows_moved"),
            delta_undo_depth: reg
                .histogram("estimator.delta.undo_depth", &[1.0, 2.0, 4.0, 8.0, 16.0]),
            shed: reg.counter("server.shed"),
            cache_hit: reg.counter("cache.hit"),
            cache_miss: reg.counter("cache.miss"),
            cache_l1_hit: reg.counter("cache.l1_hit"),
            cache_l2_hit: reg.counter("cache.l2_hit"),
            cache_stale_hit: reg.counter("cache.stale_hit"),
            cache_artifact_hit: reg.counter("cache.artifact_hit"),
            cache_artifact_miss: reg.counter("cache.artifact_miss"),
            cache_entries: reg.gauge("cache.entries"),
            cache_bytes: reg.gauge("cache.bytes"),
        }
    }
}

/// The evaluation core shared by the single-server front-end and the
/// multi-tenant serving plane ([`crate::serving`]): configuration,
/// metrics, overhead accounting, and the reusable search workspace. It
/// answers problems against snapshots; *who* gathers snapshots, samples
/// pools, supplies RNG streams, and tracks reservations is the
/// front-end's concern — which is what lets the serving plane run one
/// core per worker with per-query RNG streams and a shared copy-on-write
/// reservation ledger, while [`CloudTalkServer`] keeps its sequential
/// RNG stream and locked [`ReservationTable`].
pub(crate) struct EvalCore {
    cfg: ServerConfig,
    metrics: MetricsRegistry,
    lc: LedgerCounters,
    ids: ServerMetricIds,
    ws: SearchWorkspace,
    /// The L1 answer + artifact cache ([`crate::qcache`]).
    qcache: QueryCache,
    /// Monotonic stamp for snapshots gathered by this core. The serving
    /// plane routes every shard refresh through one collector core, so
    /// epochs are unique across shards; the single-server front-end has
    /// one core, so epochs are unique per server.
    snapshot_seq: u64,
}

/// A CloudTalk server instance.
pub struct CloudTalkServer {
    core: EvalCore,
    reservations: ReservationTable,
    rng: DetRng,
}

impl EvalCore {
    /// Creates a core with its own metrics registry.
    pub(crate) fn new(cfg: ServerConfig) -> Self {
        let mut metrics = MetricsRegistry::new();
        let lc = LedgerCounters::register(&mut metrics);
        let ids = ServerMetricIds::register(&mut metrics);
        let qcache = QueryCache::new(cfg.cache);
        EvalCore {
            cfg,
            metrics,
            lc,
            ids,
            ws: SearchWorkspace::new(),
            qcache,
            snapshot_seq: 0,
        }
    }

    /// Drains L1 entries inserted since the last call, for the serving
    /// plane's L2 publish step.
    pub(crate) fn cache_take_fresh(&mut self) -> Vec<crate::qcache::Entry> {
        self.qcache.take_fresh()
    }

    /// The core's configuration.
    pub(crate) fn cfg(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The core's metrics registry.
    pub(crate) fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Cumulative overhead ledger reconstructed from the registry.
    pub(crate) fn ledger(&self) -> OverheadLedger {
        self.lc.ledger(&self.metrics)
    }
}

impl CloudTalkServer {
    /// Creates a server.
    pub fn new(cfg: ServerConfig) -> Self {
        let hold = cfg.reservation_hold.unwrap_or(SimDuration::ZERO);
        let rng = stream_rng(cfg.seed, 0xC10D);
        CloudTalkServer {
            reservations: ReservationTable::new(hold),
            rng,
            core: EvalCore::new(cfg),
        }
    }

    /// Cumulative network-overhead ledger (§5.5 accounting), reconstructed
    /// from the server's metrics registry.
    pub fn ledger(&self) -> OverheadLedger {
        self.core.ledger()
    }

    /// The server's metrics registry: overhead counters (`overhead.*`),
    /// query/rung counters and gather histograms (`server.*`). Feed it to
    /// [`obs::metrics_dump`] for a flat export.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.core.metrics()
    }

    /// Queries answered so far.
    pub fn queries_answered(&self) -> u64 {
        self.core.metrics.counter_value(self.core.ids.queries)
    }

    /// Answers a textual CloudTalk query at simulated time `now`.
    pub fn answer_text(
        &mut self,
        text: &str,
        source: &mut impl StatusSource,
        now: SimTime,
    ) -> Result<Answer, ServerError> {
        let query = parse_query(text)?;
        let problem = resolve(&query, &MapResolver::new())?;
        let mut answer = self.answer_problem(&problem, source, now)?;
        answer.response_time += MODELLED_PARSE_TIME;
        let mut delta = OverheadLedger::default();
        delta.record_client(text.len() as u64, 8 * answer.binding.len() as u64);
        self.core.lc.absorb(&mut self.core.metrics, &delta);
        Ok(answer)
    }

    /// Answers a pre-resolved problem at simulated time `now`, reserving
    /// the recommended machines (when reservations are enabled).
    pub fn answer_problem(
        &mut self,
        problem: &Problem,
        source: &mut impl StatusSource,
        now: SimTime,
    ) -> Result<Answer, ServerError> {
        self.answer_problem_with(problem, source, now, true)
    }

    /// Answers a pre-resolved problem, optionally without reserving.
    ///
    /// Advisory queries whose recommendation the client may *not* act on
    /// (e.g. the per-heartbeat reduce-placement fitness check, where a
    /// task is assigned only if the asking node is among the recommended
    /// set) should pass `reserve = false`: reserving on every heartbeat
    /// would hide the genuinely idle machines from the very next query.
    pub fn answer_problem_with(
        &mut self,
        problem: &Problem,
        source: &mut impl StatusSource,
        now: SimTime,
        reserve: bool,
    ) -> Result<Answer, ServerError> {
        self.reservations.purge(now);
        let (working, sampled) = self.maybe_sample(problem);
        let snapshot = self.take_snapshot(&working.mentioned_addresses(), source);
        self.answer_snapshot_inner(&working, &snapshot, now, reserve, sampled)
    }

    /// Gathers status for `addrs` once into an immutable snapshot.
    ///
    /// The gathered [`World`] is `Arc`-shared: cloning the snapshot (or
    /// calling [`StatusSnapshot::share`]) is a reference-count bump, so a
    /// batch of evaluations — or a pool of worker threads — can read the
    /// same status data without re-interrogating the status servers.
    pub fn take_snapshot(
        &mut self,
        addrs: &[Address],
        source: &mut impl StatusSource,
    ) -> StatusSnapshot {
        self.core.gather_snapshot(addrs, source, &mut self.rng)
    }
}

impl EvalCore {
    /// Gathers status for `addrs` once into an immutable snapshot,
    /// charging the gather traffic to this core's overhead counters (the
    /// serving plane runs one collector core per snapshot shard, so shard
    /// refreshes account — and fail — independently).
    pub(crate) fn gather_snapshot(
        &mut self,
        addrs: &[Address],
        source: &mut impl StatusSource,
        rng: &mut DetRng,
    ) -> StatusSnapshot {
        // Every snapshot gets a fresh epoch, even in static mode: the
        // answer cache keys on it, and two gathers are two observations
        // of the fleet regardless of how the data was produced.
        self.snapshot_seq += 1;
        let epoch = self.snapshot_seq;
        if self.cfg.use_dynamic {
            // Account the gather into a local delta first: the snapshot
            // keeps it for per-query provenance, the registry accumulates
            // it into the server-lifetime totals.
            let mut gather = OverheadLedger::default();
            let outcome = scatter_gather_retry(
                source,
                addrs,
                &self.cfg.transport,
                rng,
                &mut gather,
            );
            self.lc.absorb(&mut self.metrics, &gather);
            let mut world = World::new();
            let mut ages = HashMap::with_capacity(outcome.replies.len());
            let mut decay_sum = 0.0;
            for (addr, report) in &outcome.replies {
                world.set(*addr, report.state);
                ages.insert(*addr, report.age);
                decay_sum += self.cfg.degradation.decay(report.age);
            }
            // Missing hosts contribute 0: a snapshot that never heard from
            // half the fleet is at most half fresh no matter how crisp the
            // other half's reports are.
            let freshness = if addrs.is_empty() {
                1.0
            } else {
                decay_sum / addrs.len() as f64
            };
            StatusSnapshot {
                world: Arc::new(world),
                ages: Arc::new(ages),
                elapsed: outcome.elapsed,
                interrogated: addrs.len(),
                missing: outcome.missing.len(),
                rounds: outcome.rounds,
                freshness,
                gather,
                epoch,
            }
        } else {
            // Static mode: assume idle hosts; no status traffic, and the
            // (synthetic) data is by definition fresh.
            StatusSnapshot {
                world: Arc::new(World::uniform(addrs, HostState::gbps_idle())),
                ages: Arc::new(HashMap::new()),
                elapsed: SimDuration::ZERO,
                interrogated: addrs.len(),
                missing: 0,
                rounds: 0,
                freshness: 1.0,
                gather: OverheadLedger::default(),
                epoch,
            }
        }
    }
}

impl CloudTalkServer {
    /// Answers a pre-resolved problem against an existing snapshot — no
    /// status traffic. Addresses absent from the snapshot are treated as
    /// overloaded (the same pessimism applied to unanswered hosts), so the
    /// snapshot should cover every address the problem can mention.
    pub fn answer_with_snapshot(
        &mut self,
        problem: &Problem,
        snapshot: &StatusSnapshot,
        now: SimTime,
        reserve: bool,
    ) -> Result<Answer, ServerError> {
        self.reservations.purge(now);
        let (working, sampled) = self.maybe_sample(problem);
        self.answer_snapshot_inner(&working, snapshot, now, reserve, sampled)
    }

    /// Answers a batch of pre-resolved problems with **one** scatter-gather
    /// round shared by the whole batch: every pool is sampled first, the
    /// union of mentioned addresses is interrogated once, then each problem
    /// is evaluated against the shared snapshot. Reservations still apply
    /// *within* the batch — problem `i + 1` sees the machines problem `i`
    /// was recommended — so a batch of identical queries fans out across
    /// idle machines exactly like sequential queries would.
    ///
    /// Failures are per-problem: one oversized exhaustive search does not
    /// void the rest of the batch.
    pub fn answer_batch(
        &mut self,
        problems: &[Problem],
        source: &mut impl StatusSource,
        now: SimTime,
    ) -> Vec<Result<Answer, ServerError>> {
        self.reservations.purge(now);
        let working: Vec<(Cow<'_, Problem>, bool)> = problems
            .iter()
            .map(|p| self.maybe_sample(p))
            .collect();
        let mut addrs: Vec<Address> = Vec::new();
        for (w, _) in &working {
            for a in w.mentioned_addresses() {
                if !addrs.contains(&a) {
                    addrs.push(a);
                }
            }
        }
        let snapshot = self.take_snapshot(&addrs, source);
        working
            .iter()
            .map(|(w, sampled)| self.answer_snapshot_inner(w, &snapshot, now, true, *sampled))
            .collect()
    }

    /// §4.3 sampling: shrink oversized candidate pools. Borrows the
    /// problem untouched when every pool fits the budget — the common case
    /// pays no clone.
    fn maybe_sample<'a>(&mut self, problem: &'a Problem) -> (Cow<'a, Problem>, bool) {
        sample_within_budget(problem, self.core.cfg.sample_budget, &mut self.rng)
    }

    /// Evaluation + reservation + answer assembly, shared by the direct
    /// and snapshot paths. Assumes `purge` and sampling already happened.
    fn answer_snapshot_inner(
        &mut self,
        working: &Problem,
        snapshot: &StatusSnapshot,
        now: SimTime,
        reserve: bool,
        sampled: bool,
    ) -> Result<Answer, ServerError> {
        let hold_on = self.core.cfg.reservation_hold.is_some();
        let reservations = &self.reservations;
        let pred = move |a: Address| reservations.is_reserved(a, now);
        let answer = self.core.answer_snapshot(
            working,
            snapshot,
            now,
            sampled,
            if hold_on { Some(&pred) } else { None },
            false,
            None,
        )?;
        if reserve && hold_on {
            self.reservations.reserve(
                answer.binding.iter().filter_map(|v| match v {
                    Value::Addr(a) => Some(*a),
                    Value::Disk => None,
                }),
                now,
            );
        }
        Ok(answer)
    }
}

impl EvalCore {
    /// Evaluation + answer assembly against a snapshot. Assumes sampling
    /// already happened; reservations are the caller's job — `reserved`
    /// is the caller's view of which hosts are currently held (`None`
    /// disables the overlay entirely, the "Osc" configuration), and the
    /// caller records the answer's bindings into its own table/ledger.
    ///
    /// This is where the graceful-degradation ladder engages: the
    /// snapshot's freshness score picks a rung, and the rung picks both
    /// the data (full world / fresh subset / nothing) and the backend
    /// (configured method / heuristic) the answer comes from. `shed`
    /// additionally forces the heuristic backend (serving-plane load
    /// shedding) without touching the rung's data selection.
    ///
    /// `shared` is an optional pinned view of the serving plane's L2
    /// answer cache; the core always consults its own L1 first. On a
    /// hit the search phase is skipped and the cached (backend, stats,
    /// binding, scores) tuple is replayed through the identical
    /// trace/assembly path — the returned answer is bit-identical to
    /// what the search would have produced, because the cache key pins
    /// every input the search reads (see [`crate::qcache`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn answer_snapshot(
        &mut self,
        working: &Problem,
        snapshot: &StatusSnapshot,
        now: SimTime,
        sampled: bool,
        reserved: Option<&dyn Fn(Address) -> bool>,
        shed: bool,
        shared: Option<&SharedMap>,
    ) -> Result<Answer, ServerError> {
        // A variable with an empty candidate pool can never be bound; fail
        // with a typed error instead of panicking deep in the evaluator.
        if let Some(v) = working.vars.iter().find(|v| v.candidates.is_empty()) {
            return Err(ServerError::EmptyCandidates {
                var: v.name.clone(),
            });
        }

        let rung = self.cfg.degradation.rung_for(snapshot.freshness());
        if rung == DegradationRung::AssumeBusy && self.cfg.degradation.strict {
            return Err(ServerError::TooStale {
                freshness: snapshot.freshness(),
            });
        }

        // The query's span tree. With the default NullClock all host
        // timestamps are zero and the trace — like the whole answer — is
        // deterministic; sim timestamps reconstruct the modelled timeline
        // (the gather already happened when the snapshot was taken, so the
        // collect span is synthesised from the snapshot's metadata).
        let mut trace = if self.cfg.obs.tracing {
            let cap = self.cfg.obs.span_capacity;
            if self.cfg.obs.host_timer {
                Trace::new(cap, Box::new(MonotonicClock::new()))
            } else {
                Trace::new(cap, Box::new(NullClock))
            }
        } else {
            Trace::disabled()
        };
        let root = trace.begin("answer", now);
        let t_collected = now + snapshot.elapsed;
        let collect = trace.begin("collect", now);
        trace.set_arg(collect, "rounds", u64::from(snapshot.rounds));
        trace.end(collect, t_collected);

        let sanitise = trace.begin("sanitise", t_collected);
        let addrs = working.mentioned_addresses();
        // Hosts whose report exists but is too old to trust — the set the
        // FreshSubset rung excludes. Reported in the provenance so callers
        // can see exactly *which* hosts the answer distrusted.
        let mut stale_dropped: Vec<Address> = Vec::new();
        if rung == DegradationRung::FreshSubset {
            let max_age = self.cfg.degradation.fresh_max_age;
            for &a in &addrs {
                if matches!(snapshot.report_age(a), Some(age) if age > max_age) {
                    stale_dropped.push(a);
                }
            }
            stale_dropped.sort_unstable_by_key(|a| a.0);
            stale_dropped.dedup();
        }
        trace.set_arg(sanitise, "stale_dropped", stale_dropped.len() as u64);
        trace.end(sanitise, t_collected);

        // Degraded rungs always use the heuristic: it is total (returns a
        // complete binding for any world), while the exhaustive and
        // packet-level backends can report `NoFeasibleBinding` when
        // pessimistic data stalls every candidate — precisely the
        // situation degraded rungs are in. Load shedding forces the same
        // choice for a different reason: under backlog pressure the
        // heuristic's O(max(m, n·p)) bound protects tail latency.
        let method = match rung {
            DegradationRung::Full if !shed => self.cfg.method,
            _ => EvalMethod::Heuristic,
        };
        let space = working
            .vars
            .iter()
            .fold(1u64, |acc, v| acc.saturating_mul(v.candidates.len() as u64));

        // Cache key: the search reads reservations only through the
        // `overlay_reserved` pass over the problem's mentioned addresses,
        // so the footprint-restricted mask below (plus the snapshot
        // epoch, rung, shed flag, and backend config) pins every input
        // the search depends on. The key stores the *configured* method:
        // rung + shed determine the effective one.
        let cache_on = self.qcache.enabled();
        let mut mask: Vec<Address> = match reserved {
            Some(pred) if cache_on => addrs.iter().copied().filter(|&a| pred(a)).collect(),
            _ => Vec::new(),
        };
        mask.sort_unstable_by_key(|a| a.0);
        let key = KeyParts {
            problem: working,
            epoch: snapshot.epoch(),
            reserved: &mask,
            rung,
            shed,
            method: self.cfg.method,
            strategy: self.cfg.eval_strategy,
        };
        let cached = if cache_on {
            match self.qcache.lookup(&key) {
                Some(v) => {
                    self.metrics.inc(self.ids.cache_l1_hit, 1);
                    Some(v)
                }
                None => match shared.and_then(|map| crate::qcache::lookup_shared(map, &key)) {
                    Some(v) => {
                        self.metrics.inc(self.ids.cache_l2_hit, 1);
                        Some(v)
                    }
                    None => None,
                },
            }
        } else {
            None
        };
        let cache_hit = cached.is_some();

        let search_span = trace.begin("search", t_collected);
        let t_evaluated = t_collected + MODELLED_EVAL_TIME;
        let (backend, search, binding, binding_scores) = if let Some(v) = cached {
            // Replay. The audit counter must stay zero: the epoch is in
            // the key, so a mismatching entry cannot have matched.
            self.metrics.inc(self.ids.cache_hit, 1);
            if v.epoch != snapshot.epoch() {
                self.metrics.inc(self.ids.cache_stale_hit, 1);
            }
            (v.backend, v.search, v.binding.clone(), v.binding_scores.clone())
        } else {
            if cache_on {
                self.metrics.inc(self.ids.cache_miss, 1);
            }
            let (backend, search, binding, binding_scores) =
                self.run_search(working, snapshot, &addrs, reserved, rung, method, space)?;
            if cache_on {
                self.qcache.insert(
                    &key,
                    Arc::new(CachedSearch {
                        backend,
                        search,
                        binding: binding.clone(),
                        binding_scores: binding_scores.clone(),
                        epoch: snapshot.epoch(),
                    }),
                );
                #[allow(clippy::cast_precision_loss)]
                {
                    self.metrics
                        .gauge_set(self.ids.cache_entries, self.qcache.len() as f64);
                    self.metrics
                        .gauge_set(self.ids.cache_bytes, self.qcache.bytes() as f64);
                }
            }
            (backend, search, binding, binding_scores)
        };
        trace.set_arg(search_span, "enumerated", search.enumerated);
        trace.end(search_span, t_evaluated);

        // The bind phase proper — recording the recommendation into a
        // reservation table or ledger — happens in the caller, which owns
        // that state; the span still marks the modelled instant.
        let bind = trace.begin("bind", t_evaluated);
        trace.end(bind, t_evaluated);
        trace.end(root, t_evaluated);

        self.metrics.inc(self.ids.queries, 1);
        let rung_counter = match rung {
            DegradationRung::Full => self.ids.rung_full,
            DegradationRung::FreshSubset => self.ids.rung_fresh_subset,
            DegradationRung::AssumeBusy => self.ids.rung_assume_busy,
        };
        self.metrics.inc(rung_counter, 1);
        if shed {
            self.metrics.inc(self.ids.shed, 1);
        }
        if snapshot.rounds > 0 {
            self.metrics
                .observe(self.ids.gather_rounds, f64::from(snapshot.rounds));
        }
        self.metrics.observe(self.ids.freshness, snapshot.freshness);
        // The delta counters meter *executed* evaluator work; a replayed
        // answer carries the stats in its provenance but re-ran nothing,
        // so it must not inflate them.
        if !cache_hit && (search.delta_components_rerated > 0 || search.delta_flows_moved > 0) {
            self.metrics.inc(
                self.ids.delta_components_rerated,
                search.delta_components_rerated,
            );
            self.metrics.inc(
                self.ids.delta_components_reused,
                search.delta_components_reused,
            );
            self.metrics
                .inc(self.ids.delta_flows_moved, search.delta_flows_moved);
            #[allow(clippy::cast_precision_loss)]
            self.metrics.observe(
                self.ids.delta_undo_depth,
                search.delta_max_undo_depth as f64,
            );
        }

        Ok(Answer {
            binding,
            binding_scores,
            response_time: snapshot.elapsed + MODELLED_EVAL_TIME,
            sampled,
            interrogated: snapshot.interrogated,
            missing: snapshot.missing,
            gather_rounds: snapshot.rounds,
            freshness: snapshot.freshness,
            rung,
            provenance: Provenance {
                rung,
                backend,
                search,
                gather_rounds: snapshot.rounds,
                status_bytes: snapshot.gather.status_bytes(),
                retry_bytes: snapshot.gather.retry_bytes(),
                stale_dropped,
                shed,
                cache_hit,
                trace: trace.into_report(),
            },
        })
    }

    /// The search phase of [`EvalCore::answer_snapshot`]: builds the
    /// rung's world view, overlays reservations, and runs the effective
    /// backend. This is exactly the work an answer-cache hit skips.
    #[allow(clippy::too_many_arguments)]
    fn run_search(
        &mut self,
        working: &Problem,
        snapshot: &StatusSnapshot,
        addrs: &[Address],
        reserved: Option<&dyn Fn(Address) -> bool>,
        rung: DegradationRung,
        method: EvalMethod,
        space: u64,
    ) -> Result<(Backend, SearchStats, Binding, Vec<f64>), ServerError> {
        // The world the chosen rung evaluates against. `base` owns the
        // degraded copies; `Full` keeps borrowing the shared snapshot.
        let base: Option<World> = match rung {
            DegradationRung::Full => None,
            DegradationRung::FreshSubset => {
                Some(snapshot.fresh_world(self.cfg.degradation.fresh_max_age))
            }
            // Static fallback: no data is trusted, every host is assumed
            // busy (an empty world answers every lookup pessimistically).
            DegradationRung::AssumeBusy => Some(World::new()),
        };
        let base: &World = base.as_ref().unwrap_or_else(|| snapshot.world());
        // Overlay reservations: recently recommended machines count as
        // busy. Copy-on-write — the shared snapshot world is only cloned
        // when a mentioned address actually holds a reservation.
        let overlaid = reserved.and_then(|pred| overlay_reserved(base, addrs, pred));
        let world: &World = overlaid.as_ref().unwrap_or(base);
        Ok(match method {
            EvalMethod::Heuristic => {
                let (mut b, mut s) = evaluate_query_scored(working, world, &self.cfg.heuristic);
                let enumerated = working
                    .vars
                    .iter()
                    .map(|v| v.candidates.len() as u64)
                    .sum();
                let mut stats = SearchStats {
                    space,
                    enumerated,
                    ..SearchStats::default()
                };
                if let Some(rc) = &self.cfg.heuristic.refine {
                    if let Some(o) = refine_binding(working, world, &b, rc) {
                        stats.enumerated += o.moves_tried;
                        stats.delta_components_rerated = o.delta.components_rerated;
                        stats.delta_components_reused = o.delta.components_reused;
                        stats.delta_flows_moved = o.delta.flows_moved;
                        stats.delta_max_undo_depth = o.delta.max_undo_depth;
                        if o.binding != b {
                            // The fitness scores describe the pre-refine
                            // choices; a moved binding has none.
                            s = vec![f64::INFINITY; b.len()];
                        }
                        b = o.binding;
                    }
                }
                (Backend::Heuristic, stats, b, s)
            }
            EvalMethod::Exhaustive { limit } => {
                let opts = SearchOptions::new(limit).eval(self.cfg.eval_strategy);
                // Reuse this core's workspace: back-to-back searches (a
                // serving-plane worker's steady state) are allocation-free.
                let mut r = ExhaustiveResult::default();
                exhaustive_search_in(working, world, &opts, &mut self.ws, &mut r)
                    .map_err(ServerError::Exhaustive)?;
                let stats = SearchStats {
                    space,
                    enumerated: r.evaluated,
                    pruned: r.pruned_subtrees,
                    delta_components_rerated: r.delta.components_rerated,
                    delta_components_reused: r.delta.components_reused,
                    delta_flows_moved: r.delta.flows_moved,
                    delta_max_undo_depth: r.delta.max_undo_depth,
                    ..SearchStats::default()
                };
                let n = r.binding.len();
                (Backend::Exhaustive, stats, r.binding, vec![f64::INFINITY; n])
            }
            EvalMethod::PacketLevel { limit } => {
                let mirror = self
                    .cfg
                    .pkt
                    .mirror
                    .clone()
                    .ok_or(ServerError::MirrorMissing)?;
                let opts = PktSearchOptions::new(limit)
                    .threads(self.cfg.pkt.threads)
                    .memoise(self.cfg.pkt.memoise)
                    .early_abort(self.cfg.pkt.early_abort)
                    .sim(self.cfg.pkt.sim);
                // Compiled artifacts (PktProgram + symmetry classes) are
                // pure functions of (problem, mirror); reuse them across
                // epochs — the artifact cache never needs invalidation.
                let artifacts = if self.qcache.enabled() {
                    match self.qcache.lookup_artifacts(working) {
                        Some(a) => {
                            self.metrics.inc(self.ids.cache_artifact_hit, 1);
                            a
                        }
                        None => {
                            self.metrics.inc(self.ids.cache_artifact_miss, 1);
                            let a = Arc::new(
                                pkt_prepare(working, &mirror).map_err(ServerError::PktSearch)?,
                            );
                            self.qcache.insert_artifacts(working, Arc::clone(&a));
                            a
                        }
                    }
                } else {
                    Arc::new(pkt_prepare(working, &mirror).map_err(ServerError::PktSearch)?)
                };
                let r = pkt_search_prepared(working, &mirror, &opts, &artifacts)
                    .map_err(ServerError::PktSearch)?;
                let mut delta = OverheadLedger::default();
                delta.record_pkt_memo(r.memo_hits, r.memo_misses);
                self.lc.absorb(&mut self.metrics, &delta);
                let stats = SearchStats {
                    space,
                    enumerated: r.evaluated,
                    pruned: 0,
                    aborted: r.aborted,
                    memo_hits: r.memo_hits,
                    memo_misses: r.memo_misses,
                    ..SearchStats::default()
                };
                let n = r.binding.len();
                (
                    Backend::PacketLevel,
                    stats,
                    r.binding,
                    vec![f64::INFINITY; n],
                )
            }
        })
    }
}

/// Returns a world with reservation penalties applied to every mentioned
/// address the `reserved` predicate holds, or `None` when nothing is
/// reserved (callers keep using the shared snapshot world unchanged — no
/// clone).
fn overlay_reserved(
    world: &World,
    addrs: &[Address],
    reserved: &dyn Fn(Address) -> bool,
) -> Option<World> {
    let mut out: Option<World> = None;
    for &addr in addrs {
        if reserved(addr) {
            let world = out.get_or_insert_with(|| world.clone());
            let mut s = world.get(addr);
            // Recommended machines are treated as in use until real
            // feedback catches up. The penalty is *additive* (a full
            // capacity's worth of extra usage) rather than saturating:
            // every reserved machine ranks below every unreserved one,
            // but among reserved machines the measured load still
            // orders candidates — the paper's "previously considered
            // endpoints, in decreasing order of their evaluated
            // fitness" fallback.
            s.nic_up_used += s.nic_up_capacity;
            s.nic_down_used += s.nic_down_capacity;
            s.disk_read_used += s.disk_read_capacity;
            s.disk_write_used += s.disk_write_capacity;
            world.set(addr, s);
        }
    }
    out
}

/// §4.3 sampling as a reusable step: shrink any candidate pool above
/// `budget` (drawing from `rng`), borrowing the problem untouched when
/// every pool already fits — the common case pays no clone. The bool
/// reports whether sampling actually ran.
pub(crate) fn sample_within_budget<'a>(
    problem: &'a Problem,
    budget: usize,
    rng: &mut DetRng,
) -> (Cow<'a, Problem>, bool) {
    let max_pool = problem
        .vars
        .iter()
        .map(|v| v.candidates.len())
        .max()
        .unwrap_or(0);
    if max_pool > budget {
        (Cow::Owned(sample_candidates(problem, budget, rng)), true)
    } else {
        (Cow::Borrowed(problem), false)
    }
}

/// An immutable, cheaply shareable view of gathered status data.
///
/// Produced by [`CloudTalkServer::take_snapshot`]; consumed by
/// [`CloudTalkServer::answer_with_snapshot`] /
/// [`CloudTalkServer::answer_batch`]. The world lives behind an [`Arc`],
/// so `Clone` (and [`StatusSnapshot::share`]) never copies host tables.
#[derive(Clone, Debug)]
pub struct StatusSnapshot {
    world: Arc<World>,
    /// Per-host report age, for hosts that answered. Static-mode
    /// snapshots have no entries (their data is synthetic, age 0).
    ages: Arc<HashMap<Address, SimDuration>>,
    elapsed: SimDuration,
    interrogated: usize,
    missing: usize,
    rounds: u32,
    freshness: f64,
    /// Accounting delta of the gather that produced this snapshot (zeroed
    /// for static snapshots). Feeds per-answer provenance bytes.
    gather: OverheadLedger,
    /// Core-unique stamp of the gather that produced this snapshot. The
    /// answer cache keys on it: a refreshed shard is a new epoch, so
    /// entries computed against the old data can never match again —
    /// epoch-driven invalidation, no TTLs.
    epoch: u64,
}

impl StatusSnapshot {
    /// The gathered per-host state.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// A reference-counted handle to the world, for handing to workers.
    pub fn share(&self) -> Arc<World> {
        Arc::clone(&self.world)
    }

    /// Time the gather took (all rounds and backoffs).
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Status servers interrogated.
    pub fn interrogated(&self) -> usize {
        self.interrogated
    }

    /// Status servers that never answered (after retries).
    pub fn missing(&self) -> usize {
        self.missing
    }

    /// Scatter-gather rounds spent gathering (0 for static snapshots).
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The overhead-accounting delta of the gather behind this snapshot:
    /// first-round and retry traffic, separately. Zero for static
    /// snapshots.
    pub fn gather_ledger(&self) -> OverheadLedger {
        self.gather
    }

    /// The age of `addr`'s report, if it answered.
    pub fn report_age(&self, addr: Address) -> Option<SimDuration> {
        if self.ages.is_empty() && self.world.knows(addr) {
            return Some(SimDuration::ZERO); // static snapshot
        }
        self.ages.get(&addr).copied()
    }

    /// The snapshot's freshness score in `[0, 1]`: the mean staleness
    /// decay over every interrogated host, with missing hosts counting 0.
    /// Drives the degradation-ladder rung selection.
    pub fn freshness(&self) -> f64 {
        self.freshness
    }

    /// The snapshot's epoch: a stamp unique per gathering core,
    /// incremented on every gather. Two snapshots with equal epochs are
    /// the same gather (`Arc`-shared clones); a refresh always moves it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The world restricted to hosts whose report is at most `max_age`
    /// old — what the [`DegradationRung::FreshSubset`] rung evaluates
    /// against. Excluded hosts fall back to the assumed-overloaded state
    /// on lookup.
    pub fn fresh_world(&self, max_age: SimDuration) -> World {
        let mut out = World::new();
        for (&addr, &state) in self.world.iter() {
            let age = self
                .ages
                .get(&addr)
                .copied()
                .unwrap_or(SimDuration::ZERO);
            if age <= max_age {
                out.set(addr, state);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::TableStatusSource;
    use cloudtalk_lang::builder::hdfs_write_query;

    fn idle_source(n: u32) -> TableStatusSource {
        let mut s = TableStatusSource::new();
        for i in 1..=n {
            s.set(Address(i), HostState::gbps_idle());
        }
        s
    }

    const NET: u32 = 0x0A00_0000; // the 10.0.0.0/8 the query text uses

    #[test]
    fn doc_example_avoids_busy_replica() {
        let mut status = TableStatusSource::new();
        status.set(Address(NET + 2), HostState::gbps_idle());
        status.set(Address(NET + 3), HostState::gbps_idle().with_up_load(0.9));
        status.set(Address(NET + 4), HostState::gbps_idle());
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let a = server
            .answer_text(
                "src = (10.0.0.2 10.0.0.3 10.0.0.4)\nf1 src -> 10.0.0.1 size 256M",
                &mut status,
                SimTime::ZERO,
            )
            .unwrap();
        assert_ne!(a.binding[0], Value::Addr(Address(NET + 3)));
        assert!(
            matches!(a.binding[0], Value::Addr(Address(x)) if x == NET + 2 || x == NET + 4),
            "{:?}",
            a.binding
        );
        assert!(!a.sampled);
        assert!(a.response_time >= MODELLED_PARSE_TIME + MODELLED_EVAL_TIME);
        assert_eq!(server.queries_answered(), 1);
        assert!(server.ledger().total_bytes() > 0);
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let err = server
            .answer_text("f1 -> nonsense", &mut idle_source(2), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, ServerError::Language(_)));
    }

    #[test]
    fn reservations_steer_consecutive_queries_apart() {
        // Two identical write queries in quick succession must not pick the
        // same replicas when alternatives exist.
        let nodes: Vec<Address> = (2..12).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let mut src = idle_source(12);
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let a1 = server.answer_problem(&p, &mut src, SimTime::ZERO).unwrap();
        let a2 = server
            .answer_problem(&p, &mut src, SimTime::from_secs_f64(0.01))
            .unwrap();
        let s1: std::collections::HashSet<&Value> = a1.binding.iter().collect();
        let overlap = a2.binding.iter().filter(|v| s1.contains(v)).count();
        assert_eq!(overlap, 0, "reserved hosts reused: {:?} vs {:?}", a1.binding, a2.binding);
    }

    #[test]
    fn without_reservations_queries_pile_up() {
        let nodes: Vec<Address> = (2..12).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let mut src = idle_source(12);
        let cfg = ServerConfig {
            reservation_hold: None,
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let a1 = server.answer_problem(&p, &mut src, SimTime::ZERO).unwrap();
        let a2 = server
            .answer_problem(&p, &mut src, SimTime::from_secs_f64(0.01))
            .unwrap();
        assert_eq!(a1.binding, a2.binding, "identical idle world, same answer");
    }

    #[test]
    fn reservations_expire() {
        let nodes: Vec<Address> = (2..12).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let mut src = idle_source(12);
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let a1 = server.answer_problem(&p, &mut src, SimTime::ZERO).unwrap();
        // 1 second later (> 300 ms), the original choice is available again.
        let a2 = server
            .answer_problem(&p, &mut src, SimTime::from_secs_f64(1.0))
            .unwrap();
        assert_eq!(a1.binding, a2.binding);
    }

    #[test]
    fn sampling_activates_above_budget() {
        let nodes: Vec<Address> = (2..502).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let mut src = idle_source(502);
        let cfg = ServerConfig {
            sample_budget: 19,
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let a = server.answer_problem(&p, &mut src, SimTime::ZERO).unwrap();
        assert!(a.sampled);
        // 19 sampled candidates + the fixed client address.
        assert!(a.interrogated <= 20, "interrogated {}", a.interrogated);
    }

    #[test]
    fn static_mode_skips_status_collection() {
        let nodes: Vec<Address> = (2..6).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let cfg = ServerConfig {
            use_dynamic: false,
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        // An empty status source would doom dynamic mode; static is fine.
        let mut empty = TableStatusSource::new();
        let a = server.answer_problem(&p, &mut empty, SimTime::ZERO).unwrap();
        assert_eq!(a.binding.len(), 3);
        assert_eq!(server.ledger().status_bytes(), 0);
    }

    #[test]
    fn snapshot_answers_match_direct_path() {
        // Static mode removes transport randomness, so the direct and
        // snapshot paths must agree exactly.
        let nodes: Vec<Address> = (2..8).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let cfg = ServerConfig {
            use_dynamic: false,
            ..Default::default()
        };
        let mut empty = TableStatusSource::new();

        let mut direct = CloudTalkServer::new(cfg.clone());
        let a = direct.answer_problem(&p, &mut empty, SimTime::ZERO).unwrap();

        let mut snap_server = CloudTalkServer::new(cfg);
        let snapshot = snap_server.take_snapshot(&p.mentioned_addresses(), &mut empty);
        let b = snap_server
            .answer_with_snapshot(&p, &snapshot, SimTime::ZERO, true)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(snap_server.queries_answered(), 1);
    }

    #[test]
    fn batch_shares_one_gather_round() {
        let nodes: Vec<Address> = (2..12).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let problems = vec![p.clone(), p.clone(), p.clone()];

        let mut batch_server = CloudTalkServer::new(ServerConfig::default());
        let answers =
            batch_server.answer_batch(&problems, &mut idle_source(12), SimTime::ZERO);
        assert_eq!(answers.len(), 3);
        let batch_status = batch_server.ledger().status_bytes();

        let mut seq_server = CloudTalkServer::new(ServerConfig::default());
        for _ in 0..3 {
            seq_server
                .answer_problem(&p, &mut idle_source(12), SimTime::ZERO)
                .unwrap();
        }
        let seq_status = seq_server.ledger().status_bytes();

        // One interrogation of the 11-address union versus three.
        assert_eq!(batch_status * 3, seq_status);
        assert_eq!(batch_server.queries_answered(), 3);
    }

    #[test]
    fn batch_reservations_steer_queries_apart() {
        // Within one batch, identical queries must still fan out across
        // different idle machines.
        let nodes: Vec<Address> = (2..12).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let problems = vec![p.clone(), p];
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let answers = server.answer_batch(&problems, &mut idle_source(12), SimTime::ZERO);
        let a1 = answers[0].as_ref().unwrap();
        let a2 = answers[1].as_ref().unwrap();
        let s1: std::collections::HashSet<&Value> = a1.binding.iter().collect();
        let overlap = a2.binding.iter().filter(|v| s1.contains(v)).count();
        assert_eq!(overlap, 0, "{:?} vs {:?}", a1.binding, a2.binding);
    }

    #[test]
    fn batch_errors_are_per_problem() {
        // An exhaustive search over 32^3 bindings trips the limit; the
        // other problem in the batch still gets its answer.
        let huge: Vec<Address> = (2..34).map(Address).collect();
        let small: Vec<Address> = (2..5).map(Address).collect();
        let p_huge = hdfs_write_query(Address(1), &huge, 3, 1e6).resolve().unwrap();
        let p_small = hdfs_write_query(Address(1), &small, 2, 1e6).resolve().unwrap();
        let cfg = ServerConfig {
            method: EvalMethod::Exhaustive { limit: 100 },
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let answers = server.answer_batch(
            &[p_huge, p_small],
            &mut idle_source(40),
            SimTime::ZERO,
        );
        assert!(matches!(
            answers[0],
            Err(ServerError::Exhaustive(ExhaustiveError::TooLarge { .. }))
        ));
        assert_eq!(answers[1].as_ref().unwrap().binding.len(), 2);
    }

    #[test]
    fn snapshot_share_is_refcounted() {
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let snapshot =
            server.take_snapshot(&[Address(1), Address(2)], &mut idle_source(2));
        let copy = snapshot.clone();
        assert!(std::sync::Arc::ptr_eq(&snapshot.share(), &copy.share()));
        assert_eq!(snapshot.interrogated(), 2);
        assert_eq!(snapshot.missing(), 0);
        assert!(snapshot.world().knows(Address(1)));
    }

    #[test]
    fn empty_candidate_pool_is_a_typed_error() {
        let nodes: Vec<Address> = (2..6).map(Address).collect();
        let mut p = hdfs_write_query(Address(1), &nodes, 2, 1e6).resolve().unwrap();
        for v in &mut p.vars {
            v.candidates.clear();
        }
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let err = server
            .answer_problem(&p, &mut idle_source(6), SimTime::ZERO)
            .unwrap_err();
        assert!(
            matches!(err, ServerError::EmptyCandidates { ref var } if !var.is_empty()),
            "{err}"
        );
        assert_eq!(server.queries_answered(), 0);
    }

    #[test]
    fn healthy_fleet_answers_on_the_full_rung() {
        let nodes: Vec<Address> = (2..8).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let a = server
            .answer_problem(&p, &mut idle_source(8), SimTime::ZERO)
            .unwrap();
        assert_eq!(a.rung, DegradationRung::Full);
        assert_eq!(a.freshness, 1.0);
        assert_eq!(a.gather_rounds, 1);
        assert_eq!(a.missing, 0);
    }

    #[test]
    fn silent_fleet_degrades_to_assume_busy_but_still_answers() {
        let nodes: Vec<Address> = (2..8).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let mut server = CloudTalkServer::new(ServerConfig::default());
        // Nobody answers: every poll fails, retries included.
        let mut silent = TableStatusSource::new();
        let a = server.answer_problem(&p, &mut silent, SimTime::ZERO).unwrap();
        assert_eq!(a.rung, DegradationRung::AssumeBusy);
        assert_eq!(a.freshness, 0.0);
        assert_eq!(a.missing, a.interrogated);
        assert_eq!(a.binding.len(), 3, "fallback still returns a valid binding");
        let retries = ServerConfig::default().transport.retry.max_retries;
        assert_eq!(a.gather_rounds, 1 + retries, "all retries were spent");
        // The binding only uses declared candidates.
        for v in &a.binding {
            assert!(p.vars.iter().any(|var| var.candidates.contains(v)));
        }
    }

    #[test]
    fn strict_mode_fails_instead_of_answering_blind() {
        let nodes: Vec<Address> = (2..8).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let cfg = ServerConfig {
            degradation: DegradationConfig {
                strict: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let mut silent = TableStatusSource::new();
        let err = server
            .answer_problem(&p, &mut silent, SimTime::ZERO)
            .unwrap_err();
        assert!(
            matches!(err, ServerError::TooStale { freshness } if freshness == 0.0),
            "{err}"
        );
    }

    #[test]
    fn stale_majority_degrades_to_fresh_subset() {
        use crate::faults::FaultPlan;
        use crate::faults::FaultySource;
        // 6 of 11 datanodes serve 5-second-old reports claiming the hosts
        // are busy; the 5 fresh idle ones must win and the rung must say
        // the answer came from the fresh subset.
        let nodes: Vec<Address> = (2..13).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let mut plan = FaultPlan::none();
        let mut stale_view = estimator::World::new();
        for a in 2..8u32 {
            plan = plan.stale(Address(a), SimDuration::from_secs_f64(5.0));
            stale_view.set(Address(a), HostState::gbps_idle().with_up_load(0.95));
        }
        let mut src =
            FaultySource::new(idle_source(13), plan).with_stale_world(stale_view);
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let a = server.answer_problem(&p, &mut src, SimTime::ZERO).unwrap();
        assert_eq!(a.rung, DegradationRung::FreshSubset, "freshness {}", a.freshness);
        assert!(a.freshness > 0.2 && a.freshness < 0.7, "freshness {}", a.freshness);
        for v in &a.binding {
            let Value::Addr(addr) = v else { panic!("disk binding") };
            assert!(
                addr.0 >= 8,
                "stale host {addr:?} chosen over fresh idle ones: {:?}",
                a.binding
            );
        }
    }

    fn websearch_mirror(n: usize) -> Arc<MirrorTopology> {
        Arc::new(MirrorTopology::new(simnet::topology::Topology::single_switch(
            n,
            simnet::GBPS,
            simnet::topology::TopoOptions::default(),
        )))
    }

    /// Status source answering for the mirror's 10.0.0.x addresses.
    fn mirror_source(n: u32) -> TableStatusSource {
        let mut s = TableStatusSource::new();
        for i in 1..=n {
            s.set(Address(NET + i), HostState::gbps_idle());
        }
        s
    }

    #[test]
    fn packet_level_method_works_end_to_end() {
        // Aggregation onto a free host: 10.0.0.1..3 send to `agg`, which
        // forwards to 10.0.0.8. All candidates are symmetric on a single
        // switch, so the first one wins and the symmetry cache answers
        // the rest.
        let cfg = ServerConfig {
            method: EvalMethod::PacketLevel { limit: 100 },
            pkt: PktBackendConfig {
                mirror: Some(websearch_mirror(8)),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let a = server
            .answer_text(
                "agg = (10.0.0.5 10.0.0.6 10.0.0.7)\n\
                 f1 10.0.0.1 -> agg size 100K\n\
                 f2 10.0.0.2 -> agg size 100K\n\
                 f3 10.0.0.3 -> agg size 100K\n\
                 f4 agg -> 10.0.0.8 size 300K transfer t(f1)+t(f2)+t(f3)",
                &mut mirror_source(8),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(a.rung, DegradationRung::Full);
        assert_eq!(a.binding, vec![Value::Addr(Address(NET + 5))]);
        assert_eq!(server.ledger().pkt_memo_misses, 1);
        assert_eq!(server.ledger().pkt_memo_hits, 2);
    }

    #[test]
    fn packet_level_without_mirror_is_a_typed_error() {
        let cfg = ServerConfig {
            method: EvalMethod::PacketLevel { limit: 100 },
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let err = server
            .answer_text(
                "agg = (10.0.0.2 10.0.0.3)\nf1 10.0.0.1 -> agg size 100K",
                &mut mirror_source(4),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, ServerError::MirrorMissing), "{err}");
    }

    #[test]
    fn packet_level_degrades_to_heuristic_when_status_is_stale() {
        // Silent fleet → AssumeBusy rung → the heuristic answers, even
        // though the configured method is PacketLevel (and even though no
        // mirror is configured at all — degraded rungs never touch it).
        let cfg = ServerConfig {
            method: EvalMethod::PacketLevel { limit: 100 },
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let mut silent = TableStatusSource::new();
        let a = server
            .answer_text(
                "agg = (10.0.0.2 10.0.0.3)\nf1 10.0.0.1 -> agg size 100K",
                &mut silent,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(a.rung, DegradationRung::AssumeBusy);
        assert_eq!(a.binding.len(), 1);
        assert_eq!(server.ledger().pkt_memo_misses, 0, "no simulation ran");
    }

    #[test]
    fn exhaustive_method_works_end_to_end() {
        let mut status = TableStatusSource::new();
        status.set(Address(NET + 2), HostState::gbps_idle().with_up_load(0.9));
        status.set(Address(NET + 3), HostState::gbps_idle());
        status.set(Address(NET + 1), HostState::gbps_idle());
        let cfg = ServerConfig {
            method: EvalMethod::Exhaustive { limit: 100 },
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let a = server
            .answer_text(
                "src = (10.0.0.2 10.0.0.3)\nf1 src -> 10.0.0.1 size 256M",
                &mut status,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(a.binding, vec![Value::Addr(Address(NET + 3))]);
    }

    #[test]
    fn provenance_carries_backend_counters_and_span_tree() {
        let problem = hdfs_write_query(Address(1), &[Address(2), Address(3), Address(4)], 2, 1e8)
            .resolve()
            .unwrap();
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let a = server
            .answer_problem(&problem, &mut idle_source(4), SimTime::ZERO)
            .unwrap();
        let p = &a.provenance;
        assert_eq!(p.rung, DegradationRung::Full);
        assert_eq!(p.backend, Backend::Heuristic);
        // Two variables over a shared 3-candidate pool.
        assert_eq!(p.search.space, 9);
        assert_eq!(p.search.enumerated, 6, "heuristic enumerates Σ pool sizes");
        assert_eq!(p.search.pruned, 0);
        assert!(p.stale_dropped.is_empty());
        assert_eq!(p.gather_rounds, 1);
        assert!(p.status_bytes > 0);
        assert_eq!(p.retry_bytes, 0);
        // The default (deterministic) trace records the full phase tree,
        // with sim timestamps ordered along the modelled pipeline.
        let names = p.trace.span_names();
        for name in ["answer", "collect", "sanitise", "search", "bind"] {
            assert!(names.contains(&name), "missing span {name:?} in {names:?}");
        }
        let answer = p.trace.span("answer").unwrap();
        let collect = p.trace.span("collect").unwrap();
        let search = p.trace.span("search").unwrap();
        assert_eq!(answer.sim_start, collect.sim_start);
        assert!(collect.sim_end <= search.sim_start);
        assert_eq!(search.sim_end, answer.sim_end);
        // NullClock: host timestamps are identically zero (determinism).
        assert!(p.trace.spans.iter().all(|s| s.host_end_ns == 0));
        // The metrics registry saw the same query.
        let m = server.metrics();
        assert_eq!(m.counter_named("server.queries_answered"), Some(1));
        assert_eq!(m.counter_named("server.rung_full"), Some(1));
    }

    #[test]
    fn exhaustive_provenance_counts_estimator_calls_and_prunes() {
        let nodes: Vec<Address> = (2..=5).map(Address).collect();
        let problem = hdfs_write_query(Address(1), &nodes, 3, 1e8).resolve().unwrap();
        let cfg = ServerConfig {
            method: EvalMethod::Exhaustive { limit: 100 },
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let a = server
            .answer_problem(&problem, &mut idle_source(5), SimTime::ZERO)
            .unwrap();
        let p = &a.provenance;
        assert_eq!(p.backend, Backend::Exhaustive);
        assert_eq!(p.search.space, 64, "3 vars × 4 candidates");
        // Distinctness caps the walk at 4·3·2 = 24 estimator calls; the
        // branch-and-bound may cut further, and every cut is accounted.
        assert!(p.search.enumerated >= 1 && p.search.enumerated <= 24);
        assert_eq!(p.search.aborted, 0);
        assert_eq!(p.search.memo_hits, 0);
    }

    #[test]
    fn tracing_can_be_disabled_leaving_an_empty_trace() {
        let problem = hdfs_write_query(Address(1), &[Address(2), Address(3)], 1, 1e8)
            .resolve()
            .unwrap();
        let cfg = ServerConfig {
            obs: ObsConfig {
                tracing: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let a = server
            .answer_problem(&problem, &mut idle_source(3), SimTime::ZERO)
            .unwrap();
        assert!(a.provenance.trace.spans.is_empty(), "tracing off → no spans");
        // Provenance counters are still populated.
        assert_eq!(a.provenance.backend, Backend::Heuristic);
        assert!(a.provenance.search.enumerated > 0);
    }
}
