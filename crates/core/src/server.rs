//! The CloudTalk server: parse → gather → evaluate → answer (§4, Figure 2).
//!
//! One server instance runs on every physical machine; tenants connect to
//! their local one. Answering a query:
//!
//! 1. parse the query text (or accept a pre-resolved problem);
//! 2. sample candidate pools above the probe budget (§4.3);
//! 3. interrogate the status servers of every mentioned address over the
//!    scatter-gather transport; unanswered hosts are assumed overloaded;
//! 4. overlay pseudo-reservations (§5.5) so back-to-back queries do not
//!    stampede onto the same idle machines;
//! 5. run the selected evaluator (the Listing 1 heuristic by default,
//!    exhaustive search as the accuracy baseline);
//! 6. reserve the recommended machines and answer.

use cloudtalk_lang::problem::{Address, Binding, Problem, Value};
use cloudtalk_lang::{parse_query, resolve, LangError, MapResolver};
use desim::rng::{stream_rng, DetRng};
use desim::{SimDuration, SimTime};
use estimator::{HostState, World};

use crate::exhaustive::{exhaustive_search, ExhaustiveError};
use crate::heuristic::{evaluate_query_scored, HeuristicConfig};
use crate::messages::OverheadLedger;
use crate::reservation::ReservationTable;
use crate::sampling::{sample_candidates, DEFAULT_SAMPLE_THRESHOLD};
use crate::status::StatusSource;
use crate::transport::{scatter_gather, TransportConfig};

/// Which evaluation backend answers the query.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EvalMethod {
    /// The Listing 1 heuristic (the paper's default for all experiments
    /// except web search).
    #[default]
    Heuristic,
    /// Brute force over all bindings, scored by the flow-level estimator.
    Exhaustive {
        /// Maximum bindings to try before refusing.
        limit: u64,
    },
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Scatter-gather transport parameters.
    pub transport: TransportConfig,
    /// Heuristic parameters (weight `W`, priority binding).
    pub heuristic: HeuristicConfig,
    /// Candidate-pool size above which sampling kicks in, and the sample
    /// size used (§4.3; the paper samples 19 of 300 in §5.2).
    pub sample_budget: usize,
    /// Pseudo-reservation hold time (§5.5; `None` disables — the "Osc"
    /// configuration of Figure 12).
    pub reservation_hold: Option<SimDuration>,
    /// Evaluation backend.
    pub method: EvalMethod,
    /// Whether to gather dynamic status data; with `false`, evaluation
    /// sees idle hosts everywhere (static/topology-only mode, §4).
    pub use_dynamic: bool,
    /// RNG seed for sampling and transport loss.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            transport: TransportConfig::default(),
            heuristic: HeuristicConfig::default(),
            sample_budget: DEFAULT_SAMPLE_THRESHOLD,
            reservation_hold: Some(SimDuration::from_millis(300)),
            method: EvalMethod::Heuristic,
            use_dynamic: true,
            seed: 0,
        }
    }
}

/// Modelled per-query processing overheads (paper §5.1: "around 0.45ms on
/// average to answer one query: of these, 0.32ms are spent in parsing …
/// 0.13ms running our query evaluation algorithm"). Used to report
/// simulated response times; the benches measure the real thing.
pub const MODELLED_PARSE_TIME: SimDuration = SimDuration::from_micros(320);
/// Modelled heuristic evaluation time.
pub const MODELLED_EVAL_TIME: SimDuration = SimDuration::from_micros(130);

/// The server's reply.
#[derive(Clone, Debug, PartialEq)]
pub struct Answer {
    /// One value per query variable.
    pub binding: Binding,
    /// Fitness score of each bound value (same order as `binding`;
    /// `f64::INFINITY` when the variable's placement is unconstrained).
    /// Clients may use these to judge recommendation quality (§5.3's
    /// "its fitness is evaluated after receiving a response").
    pub binding_scores: Vec<f64>,
    /// Modelled time from query receipt to reply.
    pub response_time: SimDuration,
    /// Whether candidate pools were sampled down.
    pub sampled: bool,
    /// Status servers interrogated.
    pub interrogated: usize,
    /// Status servers that did not answer.
    pub missing: usize,
}

/// Why a query failed.
#[derive(Debug)]
pub enum ServerError {
    /// The query text did not parse or resolve.
    Language(LangError),
    /// Exhaustive evaluation failed.
    Exhaustive(ExhaustiveError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Language(e) => write!(f, "query error: {e}"),
            ServerError::Exhaustive(e) => write!(f, "exhaustive evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<LangError> for ServerError {
    fn from(e: LangError) -> Self {
        ServerError::Language(e)
    }
}

/// A CloudTalk server instance.
pub struct CloudTalkServer {
    cfg: ServerConfig,
    reservations: ReservationTable,
    ledger: OverheadLedger,
    rng: DetRng,
    queries_answered: u64,
}

impl CloudTalkServer {
    /// Creates a server.
    pub fn new(cfg: ServerConfig) -> Self {
        let hold = cfg.reservation_hold.unwrap_or(SimDuration::ZERO);
        let rng = stream_rng(cfg.seed, 0xC10D);
        CloudTalkServer {
            reservations: ReservationTable::new(hold),
            ledger: OverheadLedger::default(),
            rng,
            cfg,
            queries_answered: 0,
        }
    }

    /// Cumulative network-overhead ledger (§5.5 accounting).
    pub fn ledger(&self) -> &OverheadLedger {
        &self.ledger
    }

    /// Queries answered so far.
    pub fn queries_answered(&self) -> u64 {
        self.queries_answered
    }

    /// Answers a textual CloudTalk query at simulated time `now`.
    pub fn answer_text(
        &mut self,
        text: &str,
        source: &mut impl StatusSource,
        now: SimTime,
    ) -> Result<Answer, ServerError> {
        let query = parse_query(text)?;
        let problem = resolve(&query, &MapResolver::new())?;
        let mut answer = self.answer_problem(&problem, source, now)?;
        answer.response_time += MODELLED_PARSE_TIME;
        self.ledger
            .record_client(text.len() as u64, 8 * answer.binding.len() as u64);
        Ok(answer)
    }

    /// Answers a pre-resolved problem at simulated time `now`, reserving
    /// the recommended machines (when reservations are enabled).
    pub fn answer_problem(
        &mut self,
        problem: &Problem,
        source: &mut impl StatusSource,
        now: SimTime,
    ) -> Result<Answer, ServerError> {
        self.answer_problem_with(problem, source, now, true)
    }

    /// Answers a pre-resolved problem, optionally without reserving.
    ///
    /// Advisory queries whose recommendation the client may *not* act on
    /// (e.g. the per-heartbeat reduce-placement fitness check, where a
    /// task is assigned only if the asking node is among the recommended
    /// set) should pass `reserve = false`: reserving on every heartbeat
    /// would hide the genuinely idle machines from the very next query.
    pub fn answer_problem_with(
        &mut self,
        problem: &Problem,
        source: &mut impl StatusSource,
        now: SimTime,
        reserve: bool,
    ) -> Result<Answer, ServerError> {
        self.reservations.purge(now);

        // §4.3 sampling: shrink oversized candidate pools.
        let max_pool = problem
            .vars
            .iter()
            .map(|v| v.candidates.len())
            .max()
            .unwrap_or(0);
        let sampled = max_pool > self.cfg.sample_budget;
        let working: Problem = if sampled {
            sample_candidates(problem, self.cfg.sample_budget, &mut self.rng)
        } else {
            problem.clone()
        };

        // Gather status for every mentioned address.
        let addrs = working.mentioned_addresses();
        let (world, elapsed, missing) = if self.cfg.use_dynamic {
            let outcome = scatter_gather(
                source,
                &addrs,
                &self.cfg.transport,
                &mut self.rng,
                &mut self.ledger,
            );
            let mut world = World::new();
            for (addr, state) in &outcome.replies {
                world.set(*addr, *state);
            }
            (world, outcome.elapsed, outcome.missing.len())
        } else {
            // Static mode: assume idle hosts; no status traffic.
            let world = World::uniform(&addrs, HostState::gbps_idle());
            (world, SimDuration::ZERO, 0)
        };

        // Overlay reservations: recently recommended machines count as busy.
        let world = self.overlay_reservations(world, &addrs, now);

        let (binding, binding_scores) = match self.cfg.method {
            EvalMethod::Heuristic => evaluate_query_scored(&working, &world, &self.cfg.heuristic),
            EvalMethod::Exhaustive { limit } => {
                let r = exhaustive_search(&working, &world, limit)
                    .map_err(ServerError::Exhaustive)?;
                let n = r.binding.len();
                (r.binding, vec![f64::INFINITY; n])
            }
        };

        if reserve && self.cfg.reservation_hold.is_some() {
            self.reservations.reserve(
                binding.iter().filter_map(|v| match v {
                    Value::Addr(a) => Some(*a),
                    Value::Disk => None,
                }),
                now,
            );
        }

        self.queries_answered += 1;
        Ok(Answer {
            binding,
            binding_scores,
            response_time: elapsed + MODELLED_EVAL_TIME,
            sampled,
            interrogated: addrs.len(),
            missing,
        })
    }

    fn overlay_reservations(&self, mut world: World, addrs: &[Address], now: SimTime) -> World {
        if self.cfg.reservation_hold.is_none() {
            return world;
        }
        for &addr in addrs {
            if self.reservations.is_reserved(addr, now) {
                let mut s = world.get(addr);
                // Recommended machines are treated as in use until real
                // feedback catches up. The penalty is *additive* (a full
                // capacity's worth of extra usage) rather than saturating:
                // every reserved machine ranks below every unreserved one,
                // but among reserved machines the measured load still
                // orders candidates — the paper's "previously considered
                // endpoints, in decreasing order of their evaluated
                // fitness" fallback.
                s.nic_up_used += s.nic_up_capacity;
                s.nic_down_used += s.nic_down_capacity;
                s.disk_read_used += s.disk_read_capacity;
                s.disk_write_used += s.disk_write_capacity;
                world.set(addr, s);
            }
        }
        world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::TableStatusSource;
    use cloudtalk_lang::builder::hdfs_write_query;

    fn idle_source(n: u32) -> TableStatusSource {
        let mut s = TableStatusSource::new();
        for i in 1..=n {
            s.set(Address(i), HostState::gbps_idle());
        }
        s
    }

    const NET: u32 = 0x0A00_0000; // the 10.0.0.0/8 the query text uses

    #[test]
    fn doc_example_avoids_busy_replica() {
        let mut status = TableStatusSource::new();
        status.set(Address(NET + 2), HostState::gbps_idle());
        status.set(Address(NET + 3), HostState::gbps_idle().with_up_load(0.9));
        status.set(Address(NET + 4), HostState::gbps_idle());
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let a = server
            .answer_text(
                "src = (10.0.0.2 10.0.0.3 10.0.0.4)\nf1 src -> 10.0.0.1 size 256M",
                &mut status,
                SimTime::ZERO,
            )
            .unwrap();
        assert_ne!(a.binding[0], Value::Addr(Address(NET + 3)));
        assert!(
            matches!(a.binding[0], Value::Addr(Address(x)) if x == NET + 2 || x == NET + 4),
            "{:?}",
            a.binding
        );
        assert!(!a.sampled);
        assert!(a.response_time >= MODELLED_PARSE_TIME + MODELLED_EVAL_TIME);
        assert_eq!(server.queries_answered(), 1);
        assert!(server.ledger().total_bytes() > 0);
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let err = server
            .answer_text("f1 -> nonsense", &mut idle_source(2), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, ServerError::Language(_)));
    }

    #[test]
    fn reservations_steer_consecutive_queries_apart() {
        // Two identical write queries in quick succession must not pick the
        // same replicas when alternatives exist.
        let nodes: Vec<Address> = (2..12).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let mut src = idle_source(12);
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let a1 = server.answer_problem(&p, &mut src, SimTime::ZERO).unwrap();
        let a2 = server
            .answer_problem(&p, &mut src, SimTime::from_secs_f64(0.01))
            .unwrap();
        let s1: std::collections::HashSet<&Value> = a1.binding.iter().collect();
        let overlap = a2.binding.iter().filter(|v| s1.contains(v)).count();
        assert_eq!(overlap, 0, "reserved hosts reused: {:?} vs {:?}", a1.binding, a2.binding);
    }

    #[test]
    fn without_reservations_queries_pile_up() {
        let nodes: Vec<Address> = (2..12).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let mut src = idle_source(12);
        let cfg = ServerConfig {
            reservation_hold: None,
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let a1 = server.answer_problem(&p, &mut src, SimTime::ZERO).unwrap();
        let a2 = server
            .answer_problem(&p, &mut src, SimTime::from_secs_f64(0.01))
            .unwrap();
        assert_eq!(a1.binding, a2.binding, "identical idle world, same answer");
    }

    #[test]
    fn reservations_expire() {
        let nodes: Vec<Address> = (2..12).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let mut src = idle_source(12);
        let mut server = CloudTalkServer::new(ServerConfig::default());
        let a1 = server.answer_problem(&p, &mut src, SimTime::ZERO).unwrap();
        // 1 second later (> 300 ms), the original choice is available again.
        let a2 = server
            .answer_problem(&p, &mut src, SimTime::from_secs_f64(1.0))
            .unwrap();
        assert_eq!(a1.binding, a2.binding);
    }

    #[test]
    fn sampling_activates_above_budget() {
        let nodes: Vec<Address> = (2..502).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let mut src = idle_source(502);
        let cfg = ServerConfig {
            sample_budget: 19,
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let a = server.answer_problem(&p, &mut src, SimTime::ZERO).unwrap();
        assert!(a.sampled);
        // 19 sampled candidates + the fixed client address.
        assert!(a.interrogated <= 20, "interrogated {}", a.interrogated);
    }

    #[test]
    fn static_mode_skips_status_collection() {
        let nodes: Vec<Address> = (2..6).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 1e6).resolve().unwrap();
        let cfg = ServerConfig {
            use_dynamic: false,
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        // An empty status source would doom dynamic mode; static is fine.
        let mut empty = TableStatusSource::new();
        let a = server.answer_problem(&p, &mut empty, SimTime::ZERO).unwrap();
        assert_eq!(a.binding.len(), 3);
        assert_eq!(server.ledger().status_bytes(), 0);
    }

    #[test]
    fn exhaustive_method_works_end_to_end() {
        let mut status = TableStatusSource::new();
        status.set(Address(NET + 2), HostState::gbps_idle().with_up_load(0.9));
        status.set(Address(NET + 3), HostState::gbps_idle());
        status.set(Address(NET + 1), HostState::gbps_idle());
        let cfg = ServerConfig {
            method: EvalMethod::Exhaustive { limit: 100 },
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let a = server
            .answer_text(
                "src = (10.0.0.2 10.0.0.3)\nf1 src -> 10.0.0.1 size 256M",
                &mut status,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(a.binding, vec![Value::Addr(Address(NET + 3))]);
    }
}
