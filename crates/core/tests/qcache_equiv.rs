//! Answer-cache equivalence suite (the ISSUE 9 soundness contract).
//!
//! The cache's hard requirement: **a hit must be bit-identical to the
//! miss it replaces**, at every worker count, under snapshot refreshes
//! and reservation-ledger churn. The suite replays random submission
//! schedules — repeat-heavy traffic, random arrival gaps, shard refresh
//! intervals short enough that several refreshes interleave with the
//! waves, reservation holds publishing ledger versions between waves —
//! against planes with the cache on and off, at 1, 2 and 8 workers:
//!
//! * **Bit-identical answers**: for every `(tenant, seq)` the full
//!   `Answer` (binding, scores, provenance counters, span tree) is
//!   equal across `{cache on, cache off} × {1, 2, 8 workers}`. The
//!   cache may only change latency and the `cache_hit` provenance flag
//!   (excluded from `Provenance` equality), never results.
//! * **No stale hit, ever**: after every drain `cache.stale_hit == 0`
//!   (every hit's stored epoch matched the live snapshot epoch) and no
//!   L2 entry keyed on a dead epoch survives a drain.
//! * The pinned repeat-heavy schedule actually *hits* — the equivalence
//!   claim is vacuous if the cache never fires.

use cloudtalk::aggregate::FleetLayout;
use cloudtalk::serving::{ServingConfig, ServingPlane, TenantId};
use cloudtalk::server::Answer;
use cloudtalk::status::TableStatusSource;
use cloudtalk_lang::builder::hdfs_write_query;
use cloudtalk_lang::problem::{Address, Problem};
use desim::rng::stream_rng;
use desim::{SimDuration, SimTime};
use estimator::HostState;
use proptest::prelude::*;
use rand::Rng;

const RACKS: u32 = 8;
const HOSTS_PER_RACK: u32 = 4;

fn fleet() -> (FleetLayout, TableStatusSource) {
    let addrs: Vec<Address> = (1..=RACKS * HOSTS_PER_RACK).map(Address).collect();
    let layout = FleetLayout::uniform(&addrs, HOSTS_PER_RACK as usize);
    let mut src = TableStatusSource::new();
    for &a in &addrs {
        let load = f64::from(a.0 % 5) * 0.2;
        src.set(a, HostState::gbps_idle().with_up_load(load));
    }
    (layout, src)
}

struct Sub {
    tenant: TenantId,
    arrival: SimTime,
    problem: Problem,
}

/// A repeat-heavy random schedule: a handful of query *shapes* (one per
/// rack) shared by every tenant, so distinct tenants and waves keep
/// re-asking structurally identical questions — the traffic an answer
/// cache exists for. `spread` widens the shape pool (more misses).
fn schedule(seed: u64, tenants: u32, n: usize, spread: u32) -> Vec<Sub> {
    let mut rng = stream_rng(seed, 0x9CAC);
    let mut t = SimTime::ZERO;
    (0..n)
        .map(|_| {
            t += SimDuration::from_micros(rng.gen_range(0..2500u64));
            let tenant = TenantId(rng.gen_range(0..tenants));
            let rack = rng.gen_range(0..spread.max(1)) % RACKS;
            let base = rack * HOSTS_PER_RACK + 1;
            let nodes: Vec<Address> = (base..base + HOSTS_PER_RACK).map(Address).collect();
            // One fixed source per rack shape — *not* per tenant — so
            // repeats collide on the exact post-sampling problem.
            let problem = hdfs_write_query(Address(5000 + rack), &nodes, 2, 1e6)
                .resolve()
                .unwrap();
            Sub {
                tenant,
                arrival: t,
                problem,
            }
        })
        .collect()
}

type Fingerprint = (u32, u64, Result<Answer, String>);

struct RunOut {
    fps: Vec<Fingerprint>,
    hits: u64,
    misses: u64,
}

/// Replays `subs` on a plane, draining after every submission. Checks
/// the stale-hit and dead-entry audits at every drain step.
fn run(
    workers: usize,
    cache_on: bool,
    refresh_ms: u64,
    subs: &[Sub],
) -> Result<RunOut, TestCaseError> {
    let (layout, src) = fleet();
    let mut cfg = ServingConfig {
        workers,
        racks_per_shard: 2,
        wave_quantum: SimDuration::from_millis(5),
        snapshot_refresh: SimDuration::from_millis(refresh_ms),
        // Admission out of play: capacity-dependent rejection would make
        // acceptance differ between the (faster) cached and uncached
        // arms; admission behaviour is the admission suite's job.
        max_virtual_lag: SimDuration::from_secs_f64(1e6),
        ..ServingConfig::default()
    };
    cfg.server.cache.enabled = cache_on;
    let mut plane = ServingPlane::new(cfg, layout, src);
    let mut fps: Vec<Fingerprint> = Vec::new();
    let drain = |plane: &mut ServingPlane<TableStatusSource>,
                     until: SimTime,
                     fps: &mut Vec<Fingerprint>|
     -> Result<(), TestCaseError> {
        for c in plane.run_until(until) {
            fps.push((c.tenant.0, c.seq, c.result.map_err(|e| e.to_string())));
        }
        let cs = plane.cache_stats();
        prop_assert_eq!(cs.stale_hits, 0, "stale hit observed: {:?}", cs);
        prop_assert_eq!(cs.l2_dead, 0, "dead-epoch L2 entry survived a drain: {:?}", cs);
        Ok(())
    };
    for s in subs {
        let _ = plane.submit(s.tenant, s.problem.clone(), s.arrival);
        drain(&mut plane, s.arrival, &mut fps)?;
    }
    let end = subs.last().map_or(SimTime::ZERO, |s| s.arrival) + SimDuration::from_millis(40);
    drain(&mut plane, end, &mut fps)?;
    fps.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    let cs = plane.cache_stats();
    if !cache_on {
        prop_assert_eq!(cs.hits() + cs.misses, 0, "disabled cache was consulted");
    }
    Ok(RunOut {
        fps,
        hits: cs.hits(),
        misses: cs.misses,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random repeat-heavy schedules with interleaved shard refreshes
    /// and reservation publications: cache-on answers are bit-identical
    /// to cache-off answers at 1, 2 and 8 workers, with zero stale hits.
    #[test]
    fn cache_on_equals_cache_off_at_1_2_8_workers(
        seed in any::<u64>(),
        tenants in 1u32..6,
        n in 5usize..32,
        spread in 1u32..10,
        refresh_idx in 0usize..3,
    ) {
        let refresh_ms = [3u64, 7, 20][refresh_idx];
        let subs = schedule(seed, tenants, n, spread);
        let base = run(1, false, refresh_ms, &subs)?;
        for workers in [1usize, 2, 8] {
            let off = run(workers, false, refresh_ms, &subs)?;
            let on = run(workers, true, refresh_ms, &subs)?;
            prop_assert_eq!(base.fps.len(), on.fps.len());
            prop_assert_eq!(off.fps.len(), on.fps.len());
            for ((a, b), c) in base.fps.iter().zip(&off.fps).zip(&on.fps) {
                prop_assert_eq!(
                    a, c,
                    "cached answer differs from 1-worker uncached at {} workers \
                     for (tenant {}, seq {})",
                    workers, a.0, a.1
                );
                prop_assert_eq!(b, c, "cached answer differs from uncached");
            }
        }
    }
}

/// Fixed-seed repeat-heavy smoke: equivalence plus a *non-vacuous*
/// hit count — the schedule reuses four shapes across tenants, so the
/// cache must fire many times.
#[test]
fn pinned_repeat_heavy_schedule_hits_and_matches() {
    let subs = schedule(0x9CAC_4E11, 4, 60, 4);
    let base = run(1, false, 20, &subs).unwrap();
    assert_eq!(base.fps.len(), 60, "every accepted query completes");
    let mut total_hits = 0;
    for workers in [1usize, 2, 8] {
        let on = run(workers, true, 20, &subs).unwrap();
        assert_eq!(base.fps, on.fps, "divergence at {workers} workers");
        assert!(
            on.hits + on.misses >= 60,
            "cache not consulted at {workers} workers"
        );
        total_hits += on.hits;
    }
    assert!(
        total_hits > 0,
        "repeat-heavy schedule never hit the cache — equivalence is vacuous"
    );
}
