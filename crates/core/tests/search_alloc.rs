//! Pins the zero-allocation invariant of the delta-rated search loop:
//! with a warm [`SearchWorkspace`], repeating an exhaustive search under
//! [`EvalStrategy::Delta`] on one thread must not touch the heap. This is
//! what makes per-candidate cost `O(dirty components)` in practice — a
//! single allocation per candidate would dominate small components.
//!
//! A counting `#[global_allocator]` wraps the system allocator, so this
//! file holds exactly one `#[test]` — parallel tests would pollute the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cloudtalk::exhaustive::{
    exhaustive_search_in, exhaustive_search_with, EvalStrategy, ExhaustiveResult, SearchOptions,
    SearchWorkspace,
};
use cloudtalk_lang::builder::QueryBuilder;
use cloudtalk_lang::problem::{Address, Problem};
use estimator::{HostState, World};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Only the measured thread is counted: the libtest harness thread can
// allocate concurrently (channel/parking internals) while the measured
// window is open, which made a process-wide count flake.
thread_local! {
    static COUNTED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn count_alloc() {
    if COUNTED.with(|c| c.get()) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_alloc();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_alloc();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The Figure-3 daisy chain with transfer precedence: `f1 x1 -> x2;
/// f2 x2 -> x3 size sz(f1) transfer t(f1)`.
fn daisy_query(addrs: &[Address]) -> Problem {
    let mut b = QueryBuilder::new();
    let vars = b.variable_group(
        ["x1".into(), "x2".into(), "x3".into()],
        addrs.iter().copied(),
    );
    let f1 = b
        .flow("f1")
        .from_var(vars[0])
        .to_var(vars[1])
        .size(100.0 * 1024.0 * 1024.0);
    let h1 = f1.handle();
    b.flow("f2")
        .from_var(vars[1])
        .to_var(vars[2])
        .size_of(h1)
        .transfer_of(h1);
    b.resolve().expect("well-formed")
}

#[test]
fn delta_search_is_allocation_free_after_warmup() {
    let addrs: Vec<Address> = (1..=7).map(Address).collect();
    let problem = daisy_query(&addrs);
    let mut world = World::uniform(&addrs, HostState::gbps_idle());
    // Lopsided loads: bindings land on differently-shaped components and
    // the incumbent tightens mid-search, exercising pruning paths.
    for (i, &a) in addrs.iter().enumerate() {
        world.set(
            a,
            HostState::gbps_idle()
                .with_up_load(0.12 * (i % 5) as f64)
                .with_down_load(0.09 * (i % 4) as f64),
        );
    }

    let opts = SearchOptions::new(1 << 20).eval(EvalStrategy::Delta);
    let mut ws = SearchWorkspace::new();
    let mut out = ExhaustiveResult::default();

    // Warm-up: one full search sizes every retained buffer (scratch,
    // delta caches and undo log, bounder tables, locals) to its
    // high-water mark. Also cross-check against the allocating wrapper.
    exhaustive_search_in(&problem, &world, &opts, &mut ws, &mut out).expect("feasible");
    let fresh = exhaustive_search_with(&problem, &world, &opts).expect("feasible");
    assert_eq!(out.binding, fresh.binding);
    assert_eq!(out.makespan.to_bits(), fresh.makespan.to_bits());
    assert!(out.delta.components_rerated > 0, "delta path must be live");

    // Measured: the identical search replays the identical allocation
    // pattern — which, with warm buffers, must be empty.
    COUNTED.with(|c| c.set(true));
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut acc = 0.0f64;
    for _ in 0..3 {
        exhaustive_search_in(&problem, &world, &opts, &mut ws, &mut out).expect("feasible");
        acc += out.makespan;
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(acc > 0.0, "searches must be non-trivial");
    assert_eq!(out.binding, fresh.binding, "warm reruns agree with fresh");
    assert_eq!(
        after - before,
        0,
        "delta-rated search allocated {} times after warm-up",
        after - before
    );
}
