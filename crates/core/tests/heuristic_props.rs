//! Property tests for the query-evaluation heuristic.

use cloudtalk::heuristic::{evaluate_query, evaluate_query_scored, HeuristicConfig};
use cloudtalk::sampling::sample_candidates;
use cloudtalk_lang::builder::{hdfs_read_query, hdfs_write_query, reduce_placement_query};
use cloudtalk_lang::problem::{Address, Problem, Value};
use desim::rng::stream_rng;
use estimator::{estimate, HostState, World};
use proptest::prelude::*;


fn world_from(loads: &[(u8, u8)]) -> World {
    // Host i gets load pair loads[i % len] interpreted as tenths.
    let addrs: Vec<Address> = (1..=30).map(Address).collect();
    let mut w = World::uniform(&addrs, HostState::gbps_idle());
    for (i, &a) in addrs.iter().enumerate() {
        if loads.is_empty() {
            break;
        }
        let (up, down) = loads[i % loads.len()];
        w.set(
            a,
            HostState::gbps_idle()
                .with_up_load(f64::from(up % 10) / 10.0)
                .with_down_load(f64::from(down % 10) / 10.0),
        );
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every variable is always bound, and same-pool bindings are distinct
    /// whenever the pool is large enough.
    #[test]
    fn binding_is_complete_and_distinct(
        n_nodes in 4usize..20,
        loads in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..10),
    ) {
        let nodes: Vec<Address> = (2..2 + n_nodes as u32).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 256e6).resolve().unwrap();
        let w = world_from(&loads);
        let b = evaluate_query(&p, &w, &HeuristicConfig::default());
        prop_assert_eq!(b.len(), 3);
        let set: std::collections::HashSet<&Value> = b.iter().collect();
        prop_assert_eq!(set.len(), 3, "distinct replicas");
        for v in &b {
            prop_assert!(matches!(v, Value::Addr(a) if nodes.contains(a)));
        }
    }

    /// For single-variable read queries the heuristic is optimal w.r.t.
    /// the flow-level estimator (the paper's §5.1 claim).
    #[test]
    fn single_variable_reads_are_optimal(
        loads in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..10),
    ) {
        let replicas: Vec<Address> = (2..8).map(Address).collect();
        let p = hdfs_read_query(Address(1), &replicas, 256e6).resolve().unwrap();
        let w = world_from(&loads);
        let chosen = evaluate_query(&p, &w, &HeuristicConfig::default());
        let t_chosen = estimate(&p, &chosen, &w).unwrap().makespan;
        for &r in &replicas {
            let t = estimate(&p, &vec![Value::Addr(r)], &w).unwrap().makespan;
            prop_assert!(
                t_chosen <= t * (1.0 + 1e-9),
                "picked {chosen:?} at {t_chosen}s but {r} gives {t}s"
            );
        }
    }

    /// Loading the chosen host strictly more never makes the heuristic
    /// *prefer* it over a previously equal alternative.
    #[test]
    fn more_load_never_attracts(extra in 0.05f64..0.5) {
        let replicas = [Address(2), Address(3)];
        let p = hdfs_read_query(Address(1), &replicas, 256e6).resolve().unwrap();
        let w = World::uniform(
            &p.mentioned_addresses(),
            HostState::gbps_idle(),
        );
        let first = evaluate_query(&p, &w, &HeuristicConfig::default());
        let Value::Addr(chosen) = first[0] else { panic!("address pool") };
        // Load the chosen one; the other must now win.
        let mut w2 = w.clone();
        w2.set(chosen, HostState::gbps_idle().with_up_load(extra));
        let second = evaluate_query(&p, &w2, &HeuristicConfig::default());
        prop_assert_ne!(second[0], Value::Addr(chosen));
    }

    /// Scores are reported for every variable and respect the chosen
    /// ordering (the bound value's score is the max among the pool at
    /// bind time, so re-running with that pool pre-restricted to the
    /// winner gives the same score).
    #[test]
    fn scored_evaluation_is_consistent(
        loads in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..10),
        d in 2usize..6,
    ) {
        let nodes: Vec<Address> = (1..=12).map(Address).collect();
        let p = reduce_placement_query(&nodes, d, 1e9).resolve().unwrap();
        let w = world_from(&loads);
        let (binding, scores) = evaluate_query_scored(&p, &w, &HeuristicConfig::default());
        prop_assert_eq!(binding.len(), d);
        prop_assert_eq!(scores.len(), d);
        for s in &scores {
            prop_assert!(!s.is_nan());
        }
    }

    /// Sampling a problem never invents candidates and never changes the
    /// fixed endpoints.
    #[test]
    fn sampling_is_a_restriction(budget in 3usize..40, seed in any::<u64>()) {
        let nodes: Vec<Address> = (2..202).map(Address).collect();
        let p = hdfs_write_query(Address(1), &nodes, 3, 256e6).resolve().unwrap();
        let mut rng = stream_rng(seed, 0);
        let s = sample_candidates(&p, budget, &mut rng);
        prop_assert_eq!(s.flows.len(), p.flows.len());
        for (sv, pv) in s.vars.iter().zip(&p.vars) {
            prop_assert!(sv.candidates.len() <= pv.candidates.len());
            prop_assert!(sv.candidates.len() >= 3.min(pv.candidates.len()));
            for c in &sv.candidates {
                prop_assert!(pv.candidates.contains(c));
            }
        }
        // Evaluation of the sampled problem still yields a valid binding.
        let w = World::uniform(&p.mentioned_addresses(), HostState::gbps_idle());
        let b = evaluate_query(&s, &w, &HeuristicConfig::default());
        prop_assert_eq!(b.len(), 3);
    }

    /// The heuristic never panics on arbitrary load states or weights.
    #[test]
    fn heuristic_total(
        loads in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..12),
        weight in 0.1f64..16.0,
        priority in any::<bool>(),
    ) {
        let nodes: Vec<Address> = (1..=10).map(Address).collect();
        let p = reduce_placement_query(&nodes, 4, 1e9).resolve().unwrap();
        let w = world_from(&loads);
        let cfg = HeuristicConfig {
            weight,
            priority_binding: priority,
            refine: None,
        };
        let b = evaluate_query(&p, &w, &cfg);
        prop_assert_eq!(b.len(), 4);
    }
}

/// Non-proptest: the heuristic runs in O(n·p)-ish time, so a big instance
/// completes quickly even in debug builds.
#[test]
fn large_instance_is_fast() {
    let nodes: Vec<Address> = (1..=3000).map(Address).collect();
    let p: Problem = reduce_placement_query(&nodes, 30, 1e9).resolve().unwrap();
    let w = World::uniform(&p.mentioned_addresses(), HostState::gbps_idle());
    let start = std::time::Instant::now();
    let b = evaluate_query(&p, &w, &HeuristicConfig::default());
    assert_eq!(b.len(), 30);
    assert!(
        start.elapsed().as_secs_f64() < 5.0,
        "3000x30 instance took {:?}",
        start.elapsed()
    );
}
