//! Chaos suite for the hierarchical status plane: aggregator-tier faults
//! must degrade as gracefully as host faults do in `chaos.rs`.
//!
//! The acceptance bar (ISSUE 7): with any single aggregator crashed,
//! partitioned, straggling, or crashing mid-delta-push — 3 seeds × 4
//! fault shapes — every query still returns an Answer at rung ≤
//! FreshSubset, the stale hosts are *exactly* the faulted rack's, the
//! binding never lands on them, and every run is bit-identical across
//! repeats. With a standby or bypass rung configured, the same faults
//! cost nothing at all (rung stays Full).
//!
//! The server composes with the plane through the ordinary
//! [`StatusSource`] trait and a [`TransportConfig::local`] "transport"
//! (the plane is in-process; the real wire traffic is the plane's own
//! aggregator-pull + host-refresh ledger).

use cloudtalk::aggregate::{AggregationPlane, FleetLayout, PlaneConfig, RackId};
use cloudtalk::faults::{FaultPlan, Window};
use cloudtalk::server::{CloudTalkServer, DegradationRung, ServerConfig};
use cloudtalk::status::{StatusSource, TableStatusSource};
use cloudtalk::transport::TransportConfig;
use cloudtalk_lang::builder::QueryBuilder;
use cloudtalk_lang::problem::{Address, Problem, Value};
use desim::rng::stream_rng;
use desim::SimTime;
use estimator::HostState;
use rand::Rng;

const RACKS: u32 = 3;
const HOSTS_PER_RACK: u32 = 8;
const N_HOSTS: u32 = RACKS * HOSTS_PER_RACK;
const SEEDS: [u64; 3] = [11, 29, 47];

/// The instant the failure window opens — after a clean warm-up sync.
const FAULT_AT: f64 = 0.5;
/// The instant queries run: dead-rack reports are 3 s old by then, far
/// past `fresh_max_age` (1 s), while healthy racks re-sync to age 0.
const QUERY_AT: f64 = 3.0;

fn addrs() -> Vec<Address> {
    (1..=N_HOSTS).map(Address).collect()
}

fn layout() -> FleetLayout {
    FleetLayout::uniform(&addrs(), HOSTS_PER_RACK as usize)
}

fn rack_hosts(rack: RackId) -> Vec<Address> {
    layout().hosts(rack).to_vec()
}

/// Bimodal fleet, seeded per run (same shape as the host chaos suite).
fn source(seed: u64) -> TableStatusSource {
    let mut rng = stream_rng(seed, 0xB1);
    let mut s = TableStatusSource::new();
    for a in addrs() {
        let st = if rng.gen_bool(0.5) {
            HostState::gbps_idle()
        } else {
            HostState::gbps_idle().with_up_load(0.9).with_down_load(0.9)
        };
        s.set(a, st);
    }
    s
}

/// Daisy-chain query over the whole fleet (fig3 shape).
fn daisy_problem(addrs: &[Address]) -> Problem {
    let mut b = QueryBuilder::new();
    let vars = b.variable_group(
        ["x1".into(), "x2".into(), "x3".into()],
        addrs.iter().copied(),
    );
    let f1 = b
        .flow("f1")
        .from_var(vars[0])
        .to_var(vars[1])
        .size(100.0 * 1024.0 * 1024.0);
    let h1 = f1.handle();
    b.flow("f2")
        .from_var(vars[1])
        .to_var(vars[2])
        .size_of(h1)
        .transfer_of(h1);
    b.resolve().expect("well-formed")
}

fn server(seed: u64) -> CloudTalkServer {
    CloudTalkServer::new(ServerConfig {
        seed,
        // The plane is co-located with the server: no wire between them.
        transport: TransportConfig::local(),
        ..ServerConfig::default()
    })
}

fn plane(seed: u64, cfg: PlaneConfig) -> AggregationPlane<TableStatusSource> {
    AggregationPlane::new(layout(), source(seed), PlaneConfig { seed, ..cfg })
}

/// The four aggregator fault shapes of the acceptance matrix.
#[derive(Clone, Copy, Debug)]
enum AggFault {
    Crash,
    Partition,
    Straggle,
    CrashMidPush,
}

impl AggFault {
    const ALL: [AggFault; 4] = [
        AggFault::Crash,
        AggFault::Partition,
        AggFault::Straggle,
        AggFault::CrashMidPush,
    ];

    fn plan(self, victim: RackId) -> FaultPlan {
        let open = Window::starting_at(SimTime::from_secs_f64(FAULT_AT));
        match self {
            AggFault::Crash => FaultPlan::none().agg_crash(victim, open),
            AggFault::Partition => FaultPlan::none().agg_partition(victim, open),
            // Within the pull budget (2 retries): recovered in-sync.
            AggFault::Straggle => FaultPlan::none().agg_straggle(victim, 2),
            AggFault::CrashMidPush => FaultPlan::none().agg_crash_mid_push(victim, open),
        }
    }

    /// Whether the rack stays unreachable at query time (no standby, no
    /// bypass): crash and partition silence it; a straggler is recovered
    /// by retries, and a mid-push crash resyncs within the same sync.
    fn silences(self) -> bool {
        matches!(self, AggFault::Crash | AggFault::Partition)
    }
}

/// One full faulted run: warm sync, fault opens, a host churns, query at
/// `QUERY_AT`. Returns the answer plus the plane for post-mortems.
fn run_fault(
    seed: u64,
    fault: AggFault,
    victim: RackId,
    cfg: PlaneConfig,
) -> (cloudtalk::server::Answer, AggregationPlane<TableStatusSource>) {
    let problem = daisy_problem(&addrs());
    let mut plane = plane(seed, cfg).with_faults(fault.plan(victim));
    plane.sync(SimTime::ZERO);
    // The world keeps moving after the fault opens: one host per rack
    // changes load, so healthy racks have real deltas to ship.
    for r in 0..RACKS {
        let a = Address(r * HOSTS_PER_RACK + 1);
        plane
            .source_mut()
            .set(a, HostState::gbps_idle().with_up_load(0.6));
    }
    let t_mid = SimTime::from_secs_f64(1.0);
    plane.set_now(t_mid);
    plane.sync(t_mid);
    let t = SimTime::from_secs_f64(QUERY_AT);
    plane.set_now(t);
    let answer = server(seed)
        .answer_problem(&problem, &mut plane, t)
        .expect("aggregator faults must never break the answer path");
    (answer, plane)
}

#[test]
fn single_aggregator_fault_costs_at_most_one_racks_freshness() {
    // The acceptance matrix: 3 seeds × 4 fault shapes, victim rack keyed
    // off the seed so every rack position gets hit.
    for (i, seed) in SEEDS.into_iter().enumerate() {
        let victim = RackId(i as u32 % RACKS);
        for fault in AggFault::ALL {
            let (a, plane) = run_fault(seed, fault, victim, PlaneConfig::default());
            assert!(
                matches!(a.rung, DegradationRung::Full | DegradationRung::FreshSubset),
                "seed {seed} {fault:?}: rung {:?} worse than FreshSubset",
                a.rung
            );
            assert_eq!(a.binding.len(), 3, "complete binding");
            if fault.silences() {
                // 16 of 24 hosts fresh → freshness ≈ 0.67 < 0.7.
                assert_eq!(a.rung, DegradationRung::FreshSubset, "seed {seed} {fault:?}");
                assert_eq!(
                    a.provenance.stale_dropped,
                    rack_hosts(victim),
                    "seed {seed} {fault:?}: stale hosts must be exactly the dead rack's"
                );
                assert_eq!(plane.stale_racks(), vec![victim]);
                // The binding never lands on the dead rack.
                for v in &a.binding {
                    let Value::Addr(addr) = v else { panic!("disk binding") };
                    assert!(
                        !rack_hosts(victim).contains(addr),
                        "seed {seed} {fault:?}: placed on stale host {addr:?}"
                    );
                }
            } else {
                // Stragglers and mid-push crashes are absorbed inside the
                // sync: the query never sees them.
                assert_eq!(a.rung, DegradationRung::Full, "seed {seed} {fault:?}");
                assert!(a.provenance.stale_dropped.is_empty());
                assert!(plane.stale_racks().is_empty());
            }
        }
    }
}

#[test]
fn aggregator_chaos_is_bit_identical_across_repeats() {
    for (i, seed) in SEEDS.into_iter().enumerate() {
        let victim = RackId(i as u32 % RACKS);
        for fault in AggFault::ALL {
            let (a, pa) = run_fault(seed, fault, victim, PlaneConfig::default());
            let (b, pb) = run_fault(seed, fault, victim, PlaneConfig::default());
            assert_eq!(a, b, "seed {seed} {fault:?}: Answer must be bit-identical");
            assert_eq!(
                pa.ledger(),
                pb.ledger(),
                "seed {seed} {fault:?}: byte accounting must be bit-identical"
            );
        }
    }
}

#[test]
fn standby_failover_erases_the_fault_entirely() {
    let cfg = PlaneConfig {
        standby: true,
        ..PlaneConfig::default()
    };
    for seed in SEEDS {
        let victim = RackId(1);
        let (a, plane) = run_fault(seed, AggFault::Crash, victim, cfg.clone());
        assert_eq!(a.rung, DegradationRung::Full, "seed {seed}: standby holds Full");
        assert!(a.provenance.stale_dropped.is_empty());
        assert!(plane.on_standby(victim));
        assert!(
            plane
                .metrics()
                .counter_named("gather.agg.failover_standby")
                .unwrap()
                > 0
        );
        assert!(
            plane.last_sync_trace().span("agg.failover").is_some(),
            "failover must land in the sync span tree"
        );
    }
}

#[test]
fn bypass_failover_erases_the_fault_entirely() {
    let cfg = PlaneConfig {
        bypass: true,
        ..PlaneConfig::default()
    };
    for seed in SEEDS {
        let victim = RackId(2);
        let (a, plane) = run_fault(seed, AggFault::Partition, victim, cfg.clone());
        assert_eq!(a.rung, DegradationRung::Full, "seed {seed}: bypass holds Full");
        assert!(a.provenance.stale_dropped.is_empty());
        assert!(
            plane
                .metrics()
                .counter_named("gather.agg.failover_bypass")
                .unwrap()
                > 0
        );
    }
}

#[test]
fn partition_heals_with_deltas_crash_heals_with_full_resync() {
    // A partition loses no aggregator state: after it heals, the next
    // pull is an ordinary delta. A crash loses everything: the restarted
    // incarnation forces a full resync. Same fault window, different
    // recovery cost — the epoch stamps are what tells them apart.
    let heal = SimTime::from_secs_f64(5.0);
    let window = Window::between(SimTime::from_secs_f64(FAULT_AT), heal);
    for seed in SEEDS {
        let victim = RackId(0);
        let healthy_pull = |plan: FaultPlan| {
            let mut p = plane(seed, PlaneConfig::default()).with_faults(plan);
            p.sync(SimTime::ZERO);
            p.sync(SimTime::from_secs_f64(1.0)); // faulted: rack stale
            assert_eq!(p.stale_racks(), vec![victim]);
            p.source_mut()
                .set(Address(2), HostState::gbps_idle().with_up_load(0.3));
            p.sync(SimTime::from_secs_f64(6.0)); // healed
            assert!(p.stale_racks().is_empty());
            (
                p.metrics().counter_named("gather.agg.fulls_installed").unwrap(),
                p.metrics().counter_named("gather.agg.restarts_observed").unwrap(),
                p.poll_report(Address(2)).expect("rack serves again"),
            )
        };
        let (fulls_p, restarts_p, rep_p) =
            healthy_pull(FaultPlan::none().agg_partition(victim, window));
        let (fulls_c, restarts_c, rep_c) =
            healthy_pull(FaultPlan::none().agg_crash(victim, window));
        assert_eq!(restarts_p, 0, "seed {seed}: partition loses no state");
        assert_eq!(restarts_c, 1, "seed {seed}: crash restarts the primary");
        assert!(
            fulls_c > fulls_p,
            "seed {seed}: crash recovery needs a full resync, partition only deltas"
        );
        // Either way the post-heal data is identical and fresh.
        assert_eq!(rep_p, rep_c);
        assert!(rep_p.state.nic_up_used > 0.0);
    }
}

#[test]
fn crash_mid_push_rejects_the_delayed_delta() {
    for seed in SEEDS {
        let victim = RackId(1);
        let (_, mut plane) = run_fault(
            seed,
            AggFault::CrashMidPush,
            victim,
            PlaneConfig::default(),
        );
        assert_eq!(
            plane.metrics().counter_named("gather.agg.mid_push_crashes"),
            Some(1),
            "seed {seed}"
        );
        // The sync *after* the crash (the query's own, at t = 3 s)
        // delivered the delayed pre-crash delta: the epoch rules must
        // have rejected it (pinned in aggregate_props too), visibly in
        // both the counter and that sync's span tree.
        assert_eq!(
            plane
                .metrics()
                .counter_named("gather.agg.stale_delta_rejected"),
            Some(1),
            "seed {seed}: delayed pre-crash delta must be rejected"
        );
        assert!(plane.last_sync_trace().span("agg.reject").is_some());
        // And the rejection is final: later syncs see no more strays.
        plane.sync(SimTime::from_secs_f64(4.0));
        assert_eq!(
            plane
                .metrics()
                .counter_named("gather.agg.stale_delta_rejected"),
            Some(1),
            "seed {seed}: no duplicate rejections"
        );
        assert!(plane.stale_racks().is_empty(), "rack already resynced");
    }
}
