//! Property suite for the delta-compressed, epoch-stamped partial
//! snapshots of the hierarchical status plane (`cloudtalk::aggregate`).
//!
//! The invariants pinned here are the ones the two-tier collection plane
//! leans on for correctness:
//!
//! * **Round-trip**: a collector view maintained purely by applying
//!   deltas equals the aggregator's full snapshot, entry for entry, after
//!   every accepted pull — delta compression loses nothing.
//! * **Idempotent merge**: re-applying a delta that was already merged is
//!   a no-op; the view (stamp, freshness, entries) is bit-unchanged.
//! * **Stale-delta safety**: a delayed delta from a pre-crash incarnation
//!   (or across an epoch gap) is rejected without touching the view —
//!   replayed garbage can never corrupt what the server answers from.
//!
//! Random mutate/silence/refresh/restart walks drive a real
//! `TableStatusSource` under a `RackAggregator`, with a bag of stored old
//! deltas replayed at random instants to simulate arbitrarily delayed
//! datagrams.

use cloudtalk::aggregate::{
    DeltaAnswer, MergeOutcome, RackAggregator, RackId, RackView, SnapshotDelta,
};
use cloudtalk::messages::OverheadLedger;
use cloudtalk::status::TableStatusSource;
use cloudtalk::transport::TransportConfig;
use cloudtalk_lang::problem::Address;
use desim::rng::stream_rng;
use desim::SimTime;
use estimator::HostState;
use proptest::prelude::*;
use rand::Rng;

/// Discrete load levels (same idea as the estimator oracle suites): state
/// changes are unambiguous, never floating-point coincidences.
const LEVELS: [f64; 5] = [0.0, 0.05, 0.3, 0.6, 0.9];

fn view_fingerprint(view: &RackView) -> (u64, u32, u32, SimTime, Vec<(Address, HostState)>) {
    (
        view.stamp.epoch,
        view.stamp.node,
        view.stamp.incarnation,
        view.fresh_as_of,
        view.iter().map(|(a, r)| (a, r.state)).collect(),
    )
}

/// One random walk: the view must match the aggregator's full snapshot
/// after every accepted pull, replays must be idempotent, and stale
/// deltas must bounce off.
fn drive(seed: u64, steps: usize, hosts: u32) -> Result<(), TestCaseError> {
    let mut rng = stream_rng(seed, 0xA99);
    let addrs: Vec<Address> = (1..=hosts).map(Address).collect();
    let mut src = TableStatusSource::new();
    for &a in &addrs {
        src.set(a, HostState::gbps_idle());
    }
    let mut agg = RackAggregator::new(
        RackId(0),
        1,
        addrs.clone(),
        TransportConfig::default(),
        seed,
    );
    let mut ledger = OverheadLedger::default();
    let mut view = RackView::default();
    let mut old_deltas: Vec<SnapshotDelta> = Vec::new();
    let mut restarts = 0u32;

    for step in 0..steps {
        let now = SimTime::from_nanos((step as u64 + 1) * 1_000_000);
        let roll = rng.gen_range(0..100u32);
        if roll < 35 {
            // A host's load changes (or a silenced host comes back).
            let i = rng.gen_range(0..addrs.len());
            let load = LEVELS[rng.gen_range(0..LEVELS.len())];
            src.set(addrs[i], HostState::gbps_idle().with_up_load(load));
        } else if roll < 45 {
            // A host goes silent: the next refresh drops it.
            let i = rng.gen_range(0..addrs.len());
            src.silence(addrs[i]);
        } else if roll < 52 {
            // The aggregator crashes and restarts: state lost, fresh
            // incarnation — every outstanding delta is now stale.
            agg.restart();
            restarts += 1;
        } else if roll < 62 {
            // A refresh whose delta nobody pulls (epoch may advance).
            agg.refresh(&mut src, now, &mut ledger);
        } else if roll < 88 {
            // A pull: refresh, diff against the collector's stamp, merge.
            agg.refresh(&mut src, now, &mut ledger);
            match agg.delta_since(view.stamp) {
                DeltaAnswer::Delta(d) => {
                    let out = view.apply_delta(&d);
                    prop_assert_eq!(out, MergeOutcome::Applied, "base matched: must apply");
                    // Idempotence: the duplicate datagram changes nothing.
                    let before = view_fingerprint(&view);
                    prop_assert!(view.apply_delta(&d).accepted());
                    prop_assert_eq!(view_fingerprint(&view), before, "replay must be a no-op");
                    if rng.gen_bool(0.5) {
                        old_deltas.push(d);
                    }
                }
                DeltaAnswer::Full(s) => view.install_full(&s),
            }
            // Round-trip: the delta-maintained view IS the snapshot.
            prop_assert!(
                view.matches(&agg.full()),
                "view diverged from full snapshot at step {}",
                step
            );
            prop_assert_eq!(view.stamp, agg.stamp());
        } else if let Some(i) = (!old_deltas.is_empty()).then(|| rng.gen_range(0..old_deltas.len()))
        {
            // The network delivers an arbitrarily delayed old delta.
            let d = old_deltas[i].clone();
            let before = view_fingerprint(&view);
            match view.apply_delta(&d) {
                MergeOutcome::Applied => {
                    // Only legal if the delta's base was exactly the
                    // view's stamp — a genuine (if old) successor state.
                    prop_assert_eq!(d.base.epoch, before.0);
                    prop_assert_eq!(d.base.node, before.1);
                    prop_assert_eq!(d.base.incarnation, before.2);
                }
                MergeOutcome::AlreadyApplied
                | MergeOutcome::RejectedIncarnation
                | MergeOutcome::RejectedEpochGap => {
                    prop_assert_eq!(
                        view_fingerprint(&view),
                        before,
                        "rejected/duplicate delta must not touch the view"
                    );
                }
            }
        }
    }

    // However the walk ended (mid-crash, stale view, pending deltas), one
    // clean pull converges the collector to the aggregator's truth.
    let end = SimTime::from_nanos((steps as u64 + 1) * 1_000_000);
    agg.refresh(&mut src, end, &mut ledger);
    match agg.delta_since(view.stamp) {
        DeltaAnswer::Delta(d) => {
            prop_assert!(view.apply_delta(&d).accepted());
        }
        DeltaAnswer::Full(s) => view.install_full(&s),
    }
    prop_assert!(view.matches(&agg.full()), "final pull must converge");
    prop_assert_eq!(view.stamp, agg.stamp());
    // Restarts leave their mark in the incarnation counter.
    prop_assert_eq!(view.stamp.incarnation, restarts);
    Ok(())
}

/// A delta diffed immediately before a crash must be rejected by every
/// view that has resynced with the restarted incarnation — whatever the
/// world did around the crash.
fn crash_scenario(seed: u64, hosts: u32, pre_moves: usize) -> Result<(), TestCaseError> {
    let mut rng = stream_rng(seed, 0xC4A5);
    let addrs: Vec<Address> = (1..=hosts).map(Address).collect();
    let mut src = TableStatusSource::new();
    for &a in &addrs {
        src.set(a, HostState::gbps_idle());
    }
    let mut agg = RackAggregator::new(
        RackId(0),
        1,
        addrs.clone(),
        TransportConfig::default(),
        seed,
    );
    let mut ledger = OverheadLedger::default();
    let mut view = RackView::default();

    agg.refresh(&mut src, SimTime::from_nanos(1_000_000), &mut ledger);
    let DeltaAnswer::Full(s) = agg.delta_since(view.stamp) else {
        return Err(TestCaseError::fail("unprimed view must get a Full"));
    };
    view.install_full(&s);

    // Some changes happen and a delta is computed… but its push is
    // interrupted: the datagram sits in flight.
    for m in 0..pre_moves.max(1) {
        let i = rng.gen_range(0..addrs.len());
        let load = LEVELS[rng.gen_range(0..LEVELS.len())];
        src.set(addrs[i], HostState::gbps_idle().with_up_load(load));
        agg.refresh(&mut src, SimTime::from_nanos((2 + m as u64) * 1_000_000), &mut ledger);
    }
    let in_flight = match agg.delta_since(view.stamp) {
        DeltaAnswer::Delta(d) => d,
        DeltaAnswer::Full(_) => return Err(TestCaseError::fail("same incarnation must diff")),
    };

    // Crash. The restarted incarnation re-observes the world (which may
    // have changed again) and the collector resyncs from it.
    agg.restart();
    let i = rng.gen_range(0..addrs.len());
    src.set(addrs[i], HostState::gbps_idle().with_up_load(0.9));
    agg.refresh(&mut src, SimTime::from_nanos(60_000_000), &mut ledger);
    let DeltaAnswer::Full(s2) = agg.delta_since(view.stamp) else {
        return Err(TestCaseError::fail("post-crash incarnation must resync"));
    };
    view.install_full(&s2);
    let settled = view_fingerprint(&view);

    // The in-flight pre-crash delta finally arrives.
    prop_assert_eq!(
        view.apply_delta(&in_flight),
        MergeOutcome::RejectedIncarnation,
        "pre-crash delta must be rejected after resync"
    );
    prop_assert_eq!(view_fingerprint(&view), settled);
    prop_assert!(view.matches(&agg.full()));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random mutate/silence/refresh/restart/replay walks: round-trip,
    /// idempotence, and stale-delta safety all hold at every step.
    #[test]
    fn delta_walks_round_trip_and_reject_stale(
        seed in any::<u64>(),
        steps in 20usize..120,
        hosts in 3u32..24,
    ) {
        drive(seed, steps, hosts)?;
    }

    /// The pinned crash shape of the issue: a delayed delta from a
    /// pre-crash epoch is rejected after the collector resyncs.
    #[test]
    fn pre_crash_delta_always_rejected(
        seed in any::<u64>(),
        hosts in 2u32..16,
        pre_moves in 1usize..8,
    ) {
        crash_scenario(seed, hosts, pre_moves)?;
    }
}
