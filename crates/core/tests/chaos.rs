//! Deterministic chaos suite: the answer pipeline under injected faults.
//!
//! For seeded [`FaultPlan`]s spanning every fault class — transport loss,
//! partitions, stale reports, corrupted readings, stragglers — the server
//! must never panic, always return a valid binding, report which rung of
//! the degradation ladder answered, and (when the faults are transient)
//! recover ≥ 90 % of initially-missing hosts via retry/backoff. Answer
//! quality is measured on the fig3-style daisy-chain scenario by
//! estimating the recommended binding against the *true* world and
//! comparing with the fault-free recommendation.

use cloudtalk::faults::{FaultIntensity, FaultPlan, FaultySource, Window};
use cloudtalk::server::{CloudTalkServer, DegradationRung, ServerConfig};
use cloudtalk::status::TableStatusSource;
use cloudtalk::transport::{RetryPolicy, TransportConfig};
use cloudtalk_lang::builder::QueryBuilder;
use cloudtalk_lang::problem::{Address, Problem, Value};
use desim::rng::stream_rng;
use desim::{SimDuration, SimTime};
use estimator::{estimate, HostState, World};
use rand::Rng;

const N_HOSTS: u32 = 20;
const SEEDS: [u64; 3] = [11, 29, 47];

/// The fig3 daisy chain: three variables over the full fleet,
/// `f1 x1 -> x2 size 100M; f2 x2 -> x3 size sz(f1) transfer t(f1)`.
fn daisy_problem(addrs: &[Address]) -> Problem {
    let mut b = QueryBuilder::new();
    let vars = b.variable_group(
        ["x1".into(), "x2".into(), "x3".into()],
        addrs.iter().copied(),
    );
    let f1 = b
        .flow("f1")
        .from_var(vars[0])
        .to_var(vars[1])
        .size(100.0 * 1024.0 * 1024.0);
    let h1 = f1.handle();
    b.flow("f2")
        .from_var(vars[1])
        .to_var(vars[2])
        .size_of(h1)
        .transfer_of(h1);
    b.resolve().expect("well-formed")
}

fn addrs() -> Vec<Address> {
    (1..=N_HOSTS).map(Address).collect()
}

/// A bimodal true world (the fig3 setup): each host idle or ~90 % loaded.
fn bimodal_world(seed: u64) -> World {
    let mut rng = stream_rng(seed, 0xB1);
    let mut w = World::new();
    for a in addrs() {
        let s = if rng.gen_bool(0.5) {
            HostState::gbps_idle()
        } else {
            HostState::gbps_idle().with_up_load(0.9).with_down_load(0.9)
        };
        w.set(a, s);
    }
    w
}

fn source_from(world: &World) -> TableStatusSource {
    let mut s = TableStatusSource::new();
    for (&a, &st) in world.iter() {
        s.set(a, st);
    }
    s
}

/// The world with every load inverted — what stale reports claim.
fn inverted(world: &World) -> World {
    let mut out = World::new();
    for (&a, &s) in world.iter() {
        let flipped = if s.nic_up_used > 0.0 {
            HostState::gbps_idle()
        } else {
            HostState::gbps_idle().with_up_load(0.9).with_down_load(0.9)
        };
        out.set(a, flipped);
    }
    out
}

fn server(seed: u64) -> CloudTalkServer {
    server_with(seed, TransportConfig::default())
}

fn server_with(seed: u64, transport: TransportConfig) -> CloudTalkServer {
    CloudTalkServer::new(ServerConfig {
        seed,
        transport,
        ..ServerConfig::default()
    })
}

/// Asserts the binding is structurally valid for the daisy problem:
/// complete, drawn from the candidate pools, distinct within the pool.
fn assert_valid_binding(problem: &Problem, binding: &[Value]) {
    assert_eq!(binding.len(), problem.vars.len(), "complete binding");
    for (i, v) in binding.iter().enumerate() {
        assert!(
            problem.vars[i].candidates.contains(v),
            "binding[{i}] = {v:?} not a declared candidate"
        );
    }
    let distinct: std::collections::HashSet<&Value> = binding.iter().collect();
    assert_eq!(distinct.len(), binding.len(), "distinct-pool values reused");
}

/// Estimated daisy-chain throughput of `binding` on the true world.
fn true_throughput(problem: &Problem, binding: &[Value], world: &World) -> f64 {
    estimate(problem, &binding.to_vec(), world)
        .expect("daisy binding is always estimable")
        .throughput
}

/// Runs one faulted query and the matching fault-free baseline; returns
/// (quality ratio, answer) where the ratio is faulted throughput over
/// fault-free throughput, both measured on the true world.
fn quality_under(
    seed: u64,
    plan: FaultPlan,
    stale_view: Option<World>,
    transport: TransportConfig,
) -> (f64, cloudtalk::server::Answer) {
    let world = bimodal_world(seed);
    let problem = daisy_problem(&addrs());

    let baseline = server_with(seed, transport)
        .answer_problem(&problem, &mut source_from(&world), SimTime::ZERO)
        .expect("fault-free answer");
    assert_eq!(baseline.rung, DegradationRung::Full);
    let tp_free = true_throughput(&problem, &baseline.binding, &world);
    assert!(tp_free > 0.0, "baseline must make progress");

    let mut faulty = FaultySource::new(source_from(&world), plan);
    if let Some(view) = stale_view {
        faulty = faulty.with_stale_world(view);
    }
    let answer = server_with(seed, transport)
        .answer_problem(&problem, &mut faulty, SimTime::ZERO)
        .expect("faulted queries still answer");
    assert_valid_binding(&problem, &answer.binding);
    let tp_faulty = true_throughput(&problem, &answer.binding, &world);
    (tp_faulty / tp_free, answer)
}

#[test]
fn transient_loss_recovers_and_quality_holds() {
    // knee 8 at 20-way fan-out → ~33 % per-reply loss in round one;
    // retries shrink the target set, so four retries recover everyone.
    let transport = TransportConfig {
        knee: 8,
        retry: RetryPolicy {
            max_retries: 4,
            ..RetryPolicy::default()
        },
        ..TransportConfig::default()
    };
    for seed in SEEDS {
        let (ratio, a) = quality_under(seed, FaultPlan::none(), None, transport);
        let recovered = a.interrogated - a.missing;
        assert!(
            a.missing * 10 <= a.interrogated,
            "seed {seed}: transient loss must recover ≥90% of hosts \
             ({recovered}/{} answered over {} rounds)",
            a.interrogated,
            a.gather_rounds
        );
        assert!(a.gather_rounds > 1, "loss must trigger retries");
        assert!(
            ratio >= 0.9,
            "seed {seed}: recovered data must give a near-fault-free answer, got {ratio:.2}"
        );
    }
}

#[test]
fn stragglers_are_recovered_by_retries() {
    for seed in SEEDS {
        // Every host misses the first round; all answer on the retry.
        let mut plan = FaultPlan::none();
        for a in addrs() {
            plan = plan.straggle(a, 1);
        }
        let (ratio, a) = quality_under(seed, plan, None, TransportConfig::default());
        assert_eq!(a.missing, 0, "seed {seed}: stragglers fully recovered");
        assert_eq!(a.gather_rounds, 2, "one retry sufficed");
        assert_eq!(a.rung, DegradationRung::Full);
        assert!(
            ratio >= 0.999,
            "seed {seed}: full recovery must reproduce the fault-free answer, got {ratio:.3}"
        );
    }
}

#[test]
fn rack_partition_degrades_gracefully() {
    for seed in SEEDS {
        // One "rack" (a quarter of the fleet) partitioned away, plus one
        // extra crashed host — none of them can ever answer.
        let rack: Vec<Address> = (1..=5).map(Address).collect();
        let plan = FaultPlan::none()
            .partition_group(rack, Window::always())
            .crash(Address(6), Window::always());
        let (ratio, a) = quality_under(seed, plan, None, TransportConfig::default());
        assert_eq!(a.missing, 6, "silenced hosts stay missing after retries");
        // 14 of 20 fresh → freshness 0.7: still answers, possibly degraded.
        assert!(
            matches!(a.rung, DegradationRung::Full | DegradationRung::FreshSubset),
            "seed {seed}: rung {:?}",
            a.rung
        );
        // The answer can only place on the surviving 14 hosts; the best
        // binding may be lost with them, but a bounded-quality one remains.
        assert!(
            ratio >= 0.3,
            "seed {seed}: partition answer too far from fault-free: {ratio:.2}"
        );
        for v in &a.binding {
            let Value::Addr(addr) = v else { panic!("disk binding") };
            assert!(addr.0 > 6, "placed on a silenced host: {addr:?}");
        }
    }
}

#[test]
fn stale_reports_are_discounted_not_trusted() {
    for seed in SEEDS {
        let world = bimodal_world(seed);
        // Half the fleet serves 5-second-old reports from an *inverted*
        // world — trusting them would steer flows onto the busiest hosts.
        let mut plan = FaultPlan::none();
        for a in addrs().into_iter().filter(|a| a.0 % 2 == 0) {
            plan = plan.stale(a, SimDuration::from_secs_f64(5.0));
        }
        let (ratio, a) =
            quality_under(seed, plan, Some(inverted(&world)), TransportConfig::default());
        assert_eq!(
            a.rung,
            DegradationRung::FreshSubset,
            "seed {seed}: freshness {:.2}",
            a.freshness
        );
        assert!(a.freshness > 0.2 && a.freshness < 0.7);
        assert!(
            ratio >= 0.3,
            "seed {seed}: fresh-subset answer too far off: {ratio:.2}"
        );
    }
}

#[test]
fn provenance_names_exactly_the_staleness_dropped_hosts() {
    // Same fault plan as `stale_reports_are_discounted_not_trusted`: every
    // even-numbered host serves 5-second-old reports (fresh_max_age is
    // 1 s), the odd half stays fresh. The answer's provenance must name
    // exactly the dropped hosts — sorted, no duplicates, nobody missing.
    for seed in SEEDS {
        let world = bimodal_world(seed);
        let mut plan = FaultPlan::none();
        for a in addrs().into_iter().filter(|a| a.0 % 2 == 0) {
            plan = plan.stale(a, SimDuration::from_secs_f64(5.0));
        }
        let (_, a) =
            quality_under(seed, plan, Some(inverted(&world)), TransportConfig::default());
        assert_eq!(a.rung, DegradationRung::FreshSubset);
        assert_eq!(a.provenance.rung, DegradationRung::FreshSubset);
        // Degraded rungs answer with the heuristic.
        assert_eq!(a.provenance.backend, cloudtalk::Backend::Heuristic);
        let expected: Vec<Address> =
            addrs().into_iter().filter(|a| a.0 % 2 == 0).collect();
        assert_eq!(
            a.provenance.stale_dropped, expected,
            "seed {seed}: stale_dropped must be exactly the stale half, sorted"
        );
        // The per-phase span tree is recorded by default.
        for name in ["answer", "collect", "sanitise", "search", "bind"] {
            assert!(
                a.provenance.trace.span(name).is_some(),
                "seed {seed}: missing span {name:?}"
            );
        }
    }
}

#[test]
fn corrupted_readings_are_sanitised_before_evaluation() {
    for seed in SEEDS {
        // 40 % of hosts return garbage; the sanitisation choke point must
        // keep the evaluation finite and the answer close to fault-free.
        let plan = FaultPlan::seeded(
            seed,
            &addrs(),
            &FaultIntensity {
                corrupt_frac: 0.4,
                crash_frac: 0.0,
                partition_frac: 0.0,
                straggler_frac: 0.0,
                max_straggler_rounds: 0,
                stale_frac: 0.0,
                stale_age: SimDuration::ZERO,
            },
        );
        let (ratio, a) = quality_under(seed, plan, None, TransportConfig::default());
        assert_eq!(a.rung, DegradationRung::Full, "corruption is invisible to freshness");
        assert!(ratio > 0.0, "seed {seed}: corrupted data must not zero the answer");
        assert!(
            ratio.is_finite(),
            "seed {seed}: garbage leaked into the quality arithmetic"
        );
    }
}

#[test]
fn kitchen_sink_chaos_never_panics_and_always_answers() {
    // Every fault class at once, many seeds: the server must answer every
    // time with a valid binding and a reported rung — never panic, never
    // return garbage.
    let problem = daisy_problem(&addrs());
    for seed in 0..12u64 {
        let world = bimodal_world(seed);
        let plan = FaultPlan::seeded(seed, &addrs(), &FaultIntensity::chaos());
        let mut src = FaultySource::new(source_from(&world), plan)
            .with_stale_world(inverted(&world));
        let a = server(seed)
            .answer_problem(&problem, &mut src, SimTime::ZERO)
            .expect("chaos must not break the answer path");
        assert_valid_binding(&problem, &a.binding);
        assert!((0.0..=1.0).contains(&a.freshness), "freshness {}", a.freshness);
        // The rung must be consistent with the observed freshness.
        let expected = ServerConfig::default().degradation.rung_for(a.freshness);
        assert_eq!(a.rung, expected);
        let tp = true_throughput(&problem, &a.binding, &world);
        assert!(tp.is_finite() && tp > 0.0, "seed {seed}: throughput {tp}");
    }
}

#[test]
fn crashed_server_recovers_after_restart_window() {
    let world = bimodal_world(3);
    let problem = daisy_problem(&addrs());
    // Host 1 crashed until t = 1 s.
    let plan = FaultPlan::none().crash(
        Address(1),
        Window::between(SimTime::ZERO, SimTime::from_secs_f64(1.0)),
    );
    let mut src = FaultySource::new(source_from(&world), plan);
    let mut srv = server(3);
    let a = srv.answer_problem(&problem, &mut src, SimTime::ZERO).unwrap();
    assert_eq!(a.missing, 1, "crashed host missing before restart");
    src.set_now(SimTime::from_secs_f64(2.0));
    let b = srv
        .answer_problem(&problem, &mut src, SimTime::from_secs_f64(2.0))
        .unwrap();
    assert_eq!(b.missing, 0, "restarted host answers again");
    assert_eq!(b.rung, DegradationRung::Full);
}

#[test]
fn chaos_is_deterministic_given_seed() {
    let problem = daisy_problem(&addrs());
    let run = |seed: u64| {
        let world = bimodal_world(seed);
        let plan = FaultPlan::seeded(seed, &addrs(), &FaultIntensity::chaos());
        let mut src =
            FaultySource::new(source_from(&world), plan).with_stale_world(inverted(&world));
        server(seed)
            .answer_problem(&problem, &mut src, SimTime::ZERO)
            .unwrap()
    };
    for seed in SEEDS {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.binding, b.binding);
        assert_eq!(a.rung, b.rung);
        assert_eq!(a.freshness, b.freshness);
        assert_eq!(a.gather_rounds, b.gather_rounds);
    }
}
