//! Equivalence properties for the branch-and-bound exhaustive search:
//! whatever the thread count {1, 2, 8} and whether pruning is on, the
//! search must return the same winner (same binding, makespan bit for
//! bit) as the plain sequential no-pruning scan — on randomly generated
//! problems covering fixed/variable/unknown/disk endpoints, start delays,
//! rate caps, rate coupling and transfer precedence.

use cloudtalk::exhaustive::{exhaustive_search_with, SearchOptions};
use cloudtalk_lang::ast::{AttrKind, RefAttr};
use cloudtalk_lang::problem::{
    Address, Endpoint, ExprR, Flow, FlowId, Problem, Value, VarId, Variable,
};
use estimator::{HostState, World};
use proptest::prelude::*;

const MB: f64 = 1024.0 * 1024.0;

/// Raw generated description of one variable: shared-pool id and a
/// candidate bitmask over the address pool (bit 7 adds `disk`).
type VarSpec = (u8, u8);

/// Raw generated description of one flow: endpoint selectors, optional
/// size (MB), optional start (s), rate selector, transfer selector.
type FlowSpec = (u8, u8, Option<u16>, Option<u8>, u8, u8);

fn endpoint(sel: u8, n_vars: usize, n_addrs: u32) -> Endpoint {
    match sel % 8 {
        0..=3 => Endpoint::Var(VarId(sel as usize % n_vars)),
        4 | 5 => Endpoint::Addr(Address(1 + u32::from(sel) % n_addrs)),
        6 => Endpoint::Unknown,
        _ => Endpoint::Disk,
    }
}

fn build_problem(
    n_addrs: u32,
    var_specs: &[VarSpec],
    flow_specs: &[FlowSpec],
    distinct: bool,
) -> Problem {
    let n_vars = var_specs.len();
    let vars: Vec<Variable> = var_specs
        .iter()
        .enumerate()
        .map(|(i, &(pool, mask))| {
            let mut candidates: Vec<Value> = (0..7u32)
                .filter(|b| mask & (1 << b) != 0 && *b < n_addrs)
                .map(|b| Value::Addr(Address(b + 1)))
                .collect();
            if mask & 0x80 != 0 {
                candidates.push(Value::Disk);
            }
            if candidates.is_empty() {
                candidates.push(Value::Addr(Address(1)));
            }
            Variable {
                name: format!("x{i}"),
                candidates,
                pool: usize::from(pool % 2),
            }
        })
        .collect();

    let n_flows = flow_specs.len();
    let flows: Vec<Flow> = flow_specs
        .iter()
        .enumerate()
        .map(|(i, &(src, dst, size_mb, start, rate_sel, transfer_sel))| {
            let mut f = Flow::new(
                Some(format!("f{i}")),
                endpoint(src, n_vars, n_addrs),
                endpoint(dst, n_vars, n_addrs),
            );
            if let Some(mb) = size_mb {
                f.set_attr(AttrKind::Size, ExprR::Literal(f64::from(mb) * MB));
            }
            if let Some(s) = start {
                f.set_attr(AttrKind::Start, ExprR::Literal(f64::from(s % 4)));
            }
            match rate_sel % 4 {
                0 => {} // no rate attribute
                1 => f.set_attr(AttrKind::Rate, ExprR::Literal(2e6 * f64::from(rate_sel))),
                2 => f.set_attr(
                    AttrKind::Rate,
                    ExprR::Ref(RefAttr::Rate, FlowId(usize::from(rate_sel) % n_flows)),
                ),
                _ => {}
            }
            match transfer_sel % 4 {
                1 => f.set_attr(
                    AttrKind::Transfer,
                    ExprR::Literal(f64::from(transfer_sel) * MB),
                ),
                2 => f.set_attr(
                    AttrKind::Transfer,
                    ExprR::Ref(
                        RefAttr::Transferred,
                        FlowId(usize::from(transfer_sel) % n_flows),
                    ),
                ),
                _ => {}
            }
            f
        })
        .collect();

    Problem {
        vars,
        flows,
        distinct,
    }
}

fn build_world(n_addrs: u32, loads: &[(u8, u8)]) -> World {
    let addrs: Vec<Address> = (1..=n_addrs).map(Address).collect();
    let mut w = World::uniform(&addrs, HostState::gbps_idle());
    if loads.is_empty() {
        return w;
    }
    for (i, &a) in addrs.iter().enumerate() {
        let (up, down) = loads[i % loads.len()];
        w.set(
            a,
            HostState::gbps_idle()
                .with_up_load(f64::from(up % 10) / 10.0)
                .with_down_load(f64::from(down % 10) / 10.0),
        );
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Parallel + pruned search ≡ the sequential reference, across thread
    /// counts {1, 2, 8}, on arbitrary problems and worlds.
    #[test]
    fn branch_and_bound_matches_sequential_reference(
        n_addrs in 4u32..=8,
        var_specs in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..=3),
        flow_specs in proptest::collection::vec(
            (
                any::<u8>(),
                any::<u8>(),
                proptest::option::of(1u16..400),
                proptest::option::of(any::<u8>()),
                any::<u8>(),
                any::<u8>(),
            ),
            1..=3,
        ),
        distinct in any::<bool>(),
        loads in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..10),
    ) {
        let p = build_problem(n_addrs, &var_specs, &flow_specs, distinct);
        let w = build_world(n_addrs, &loads);

        let reference = exhaustive_search_with(
            &p,
            &w,
            &SearchOptions::new(100_000).threads(1).prune(false),
        );
        for threads in [1usize, 2, 8] {
            for prune in [false, true] {
                let opts = SearchOptions::new(100_000).threads(threads).prune(prune);
                let r = exhaustive_search_with(&p, &w, &opts);
                match (&reference, &r) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(
                            &a.binding, &b.binding,
                            "winner drifted (threads={} prune={})", threads, prune
                        );
                        prop_assert_eq!(
                            a.makespan.to_bits(), b.makespan.to_bits(),
                            "makespan {} vs {} (threads={} prune={})",
                            a.makespan, b.makespan, threads, prune
                        );
                        if prune {
                            prop_assert!(b.evaluated <= a.evaluated);
                        } else {
                            prop_assert_eq!(a.evaluated, b.evaluated);
                        }
                    }
                    (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                    _ => prop_assert!(
                        false,
                        "outcome mismatch (threads={} prune={}): {:?} vs {:?}",
                        threads, prune, reference, r
                    ),
                }
            }
        }
    }
}
