//! Determinism suite for the packet-level search backend: whatever the
//! worker-thread count {1, 2, 8} and whichever optimisations are on
//! (symmetry memoisation, incumbent early-abort), the search must return
//! the same winner — same binding, makespan bit for bit — as the plain
//! serial no-memo no-abort scan. The optimisations trade work, never
//! answers.
//!
//! The scenario is deliberately asymmetric: a two-tier fabric where one
//! candidate rack is shared with the pinned frontend and another is not,
//! so equivalence classes have genuinely different makespans and the
//! tie-break discipline is exercised across class boundaries.

use std::sync::Arc;

use cloudtalk::pktsearch::{pkt_search, MirrorTopology, PktSearchOptions};
use cloudtalk::server::{
    CloudTalkServer, DegradationRung, EvalMethod, PktBackendConfig, ServerConfig,
};
use cloudtalk::status::TableStatusSource;
use cloudtalk_lang::ast::{AttrKind, BinOp, Expr, FlowRef, RefAttr};
use cloudtalk_lang::builder::QueryBuilder;
use cloudtalk_lang::problem::{Address, Problem};
use cloudtalk_lang::Span;
use desim::SimTime;
use estimator::HostState;
use simnet::topology::{HostId, TopoOptions, Topology};
use simnet::GBPS;

const LEAF_BYTES: f64 = 50.0 * 1024.0;

fn t_ref(idx: usize) -> Expr {
    Expr::Ref {
        attr: RefAttr::Transferred,
        flow: FlowRef::Index {
            index: idx,
            span: Span::DUMMY,
        },
        span: Span::DUMMY,
    }
}

fn t_sum(lo: usize, hi: usize) -> Expr {
    let mut expr = t_ref(lo);
    for idx in lo + 1..=hi {
        expr = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(expr),
            rhs: Box::new(t_ref(idx)),
        };
    }
    expr
}

/// Two-aggregator fan-in over a 4-rack fabric. Candidates span two
/// racks: hosts 1–2 share rack 0 with the (pinned) frontend, hosts 4–5
/// sit alone in rack 1, so the search sees two equivalence classes with
/// different makespans plus within-class ties.
fn scenario() -> (MirrorTopology, Problem) {
    let topo = Topology::two_tier(4, 4, GBPS, f64::INFINITY, TopoOptions::default());
    let hosts = topo.host_ids();
    let frontend = hosts[0];
    let leaves: Vec<HostId> = hosts[8..16].to_vec();
    let candidates = [hosts[1], hosts[2], hosts[4], hosts[5]];

    let addr = |h: HostId| Address(topo.host(h).addr);
    let mut b = QueryBuilder::new();
    let aggs = b.variable_group(
        ["agg1".to_string(), "agg2".to_string()],
        candidates.iter().map(|&h| addr(h)).collect::<Vec<_>>(),
    );
    let half = leaves.len() / 2;
    let halves = [&leaves[..half], &leaves[half..]];
    for (g, half_leaves) in halves.iter().enumerate() {
        for &leaf in *half_leaves {
            b.flow(format!("g{g}_{}", leaf.0))
                .from_addr(addr(leaf))
                .to_var(aggs[g])
                .size(LEAF_BYTES);
        }
    }
    let mut lo = 1;
    for (g, half_leaves) in halves.iter().enumerate() {
        let hi = lo + half_leaves.len() - 1;
        b.flow(format!("up{g}"))
            .from_var(aggs[g])
            .to_addr(addr(frontend))
            .size(LEAF_BYTES * half_leaves.len() as f64)
            .attr(AttrKind::Transfer, t_sum(lo, hi));
        lo = hi + 1;
    }
    let problem = b.resolve().expect("builder query is structurally valid");
    (MirrorTopology::new(topo), problem)
}

#[test]
fn every_configuration_matches_the_serial_full_scan_bit_for_bit() {
    let (mirror, problem) = scenario();
    let golden = pkt_search(
        &problem,
        &mirror,
        &PktSearchOptions::new(100).memoise(false).early_abort(false),
    )
    .expect("serial full scan succeeds");
    assert!(golden.makespan.is_finite());

    for threads in [1usize, 2, 8] {
        for memoise in [false, true] {
            for early_abort in [false, true] {
                let opts = PktSearchOptions::new(100)
                    .threads(threads)
                    .memoise(memoise)
                    .early_abort(early_abort);
                let r = pkt_search(&problem, &mirror, &opts).expect("search succeeds");
                assert_eq!(
                    r.binding, golden.binding,
                    "winner differs (threads={threads} memoise={memoise} abort={early_abort})"
                );
                assert_eq!(
                    r.makespan.to_bits(),
                    golden.makespan.to_bits(),
                    "makespan not bit-identical (threads={threads} memoise={memoise} abort={early_abort})"
                );
            }
        }
    }
}

#[test]
fn memoisation_changes_work_not_answers() {
    let (mirror, problem) = scenario();
    let plain = pkt_search(&problem, &mirror, &PktSearchOptions::new(100).memoise(false))
        .expect("unmemoised search succeeds");
    let memo = pkt_search(&problem, &mirror, &PktSearchOptions::new(100))
        .expect("memoised search succeeds");

    assert_eq!(memo.binding, plain.binding);
    assert_eq!(memo.makespan.to_bits(), plain.makespan.to_bits());
    // The cache actually fired and skipped simulations.
    assert_eq!(plain.memo_hits, 0);
    assert!(memo.memo_hits > 0, "symmetric classes should share results");
    assert!(
        memo.evaluated + memo.aborted < plain.evaluated + plain.aborted,
        "memoisation should reduce simulated bindings ({} + {} vs {} + {})",
        memo.evaluated,
        memo.aborted,
        plain.evaluated,
        plain.aborted
    );
}

#[test]
fn server_packet_level_answers_are_thread_count_invariant() {
    let (mirror, problem) = scenario();
    let mirror = Arc::new(mirror);
    let mut status = TableStatusSource::new();
    for &a in &problem.mentioned_addresses() {
        status.set(a, HostState::gbps_idle());
    }

    let mut answers = Vec::new();
    for threads in [1usize, 2, 8] {
        let cfg = ServerConfig {
            method: EvalMethod::PacketLevel { limit: 100 },
            pkt: PktBackendConfig {
                mirror: Some(Arc::clone(&mirror)),
                threads,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut server = CloudTalkServer::new(cfg);
        let a = server
            .answer_problem(&problem, &mut status, SimTime::ZERO)
            .expect("packet-level answer succeeds");
        assert_eq!(a.rung, DegradationRung::Full);
        answers.push(a.binding);
    }
    assert_eq!(answers[0], answers[1], "1 vs 2 threads");
    assert_eq!(answers[0], answers[2], "1 vs 8 threads");
}

#[test]
fn server_provenance_matches_the_direct_serial_scan() {
    // The answer's provenance must report the same search-effort counters
    // (simulations completed, deadline-aborted, memo hits/misses) as a
    // direct `pkt_search` run with the server's own options — the serial
    // memoised scan this suite pins everywhere else.
    let (mirror, problem) = scenario();
    let mirror = Arc::new(mirror);
    let direct = pkt_search(&problem, &mirror, &PktSearchOptions::new(100))
        .expect("direct serial scan succeeds");

    let mut status = TableStatusSource::new();
    for &a in &problem.mentioned_addresses() {
        status.set(a, HostState::gbps_idle());
    }
    let cfg = ServerConfig {
        method: EvalMethod::PacketLevel { limit: 100 },
        pkt: PktBackendConfig {
            mirror: Some(Arc::clone(&mirror)),
            ..Default::default()
        },
        ..Default::default()
    };
    let mut server = CloudTalkServer::new(cfg);
    let a = server
        .answer_problem(&problem, &mut status, SimTime::ZERO)
        .expect("packet-level answer succeeds");

    assert_eq!(a.provenance.backend, cloudtalk::Backend::PacketLevel);
    assert_eq!(a.binding, direct.binding);
    let s = &a.provenance.search;
    assert_eq!(s.enumerated, direct.evaluated, "completed simulations");
    assert_eq!(s.aborted, direct.aborted, "deadline-abandoned simulations");
    assert_eq!(s.memo_hits, direct.memo_hits);
    assert_eq!(s.memo_misses, direct.memo_misses);
    assert!(s.memo_hits > 0, "symmetric classes should share results");
    // The memo traffic also lands in the server's overhead ledger.
    let ledger = server.ledger();
    assert_eq!(ledger.pkt_memo_hits, direct.memo_hits);
    assert_eq!(ledger.pkt_memo_misses, direct.memo_misses);
}
