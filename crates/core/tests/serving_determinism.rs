//! Serving-plane determinism suite (the ISSUE 8 contract).
//!
//! A random schedule of tenant queries — random tenants, racks, replica
//! counts and Poisson-ish arrival gaps — is replayed against planes with
//! 1, 2 and 8 workers. The pinned invariants:
//!
//! * **Bit-identical answers**: for every `(tenant, seq)` the full
//!   `Answer` (binding, scores, provenance, span tree) is equal at every
//!   worker count. Worker count may only change *latency*, never
//!   results.
//! * **Identical admission**: with admission bounds not in play, the
//!   accepted/rejected split and the wave assignment of every query are
//!   worker-count independent.
//! * **Conflict-free ledger at every epoch**: after every drain step the
//!   published ledger version is strictly sorted by address,
//!   `conflicts == 0`, and every retired version has been reclaimed
//!   (no worker pins survive a wave).

use cloudtalk::aggregate::FleetLayout;
use cloudtalk::serving::{ServingConfig, ServingPlane, TelemetryConfig, TenantId};
use cloudtalk::server::Answer;
use cloudtalk::status::TableStatusSource;
use cloudtalk_lang::builder::hdfs_write_query;
use cloudtalk_lang::problem::{Address, Problem};
use desim::rng::stream_rng;
use desim::{SimDuration, SimTime};
use estimator::HostState;
use proptest::prelude::*;
use rand::Rng;

const RACKS: u32 = 8;
const HOSTS_PER_RACK: u32 = 4;

/// 8 racks × 4 hosts with a deterministic mix of load levels, so
/// placements are driven by data rather than ties.
fn fleet() -> (FleetLayout, TableStatusSource) {
    let addrs: Vec<Address> = (1..=RACKS * HOSTS_PER_RACK).map(Address).collect();
    let layout = FleetLayout::uniform(&addrs, HOSTS_PER_RACK as usize);
    let mut src = TableStatusSource::new();
    for &a in &addrs {
        let load = f64::from(a.0 % 5) * 0.2;
        src.set(a, HostState::gbps_idle().with_up_load(load));
    }
    (layout, src)
}

struct Sub {
    tenant: TenantId,
    arrival: SimTime,
    problem: Problem,
}

/// One seeded random submission schedule, generated once and replayed
/// verbatim for every worker count.
fn schedule(seed: u64, tenants: u32, n: usize) -> Vec<Sub> {
    let mut rng = stream_rng(seed, 0x5EED);
    let mut t = SimTime::ZERO;
    (0..n)
        .map(|_| {
            t += SimDuration::from_micros(rng.gen_range(0..2500u64));
            let tenant = TenantId(rng.gen_range(0..tenants));
            let rack = rng.gen_range(0..RACKS);
            let replicas = rng.gen_range(1..=2usize);
            let base = rack * HOSTS_PER_RACK + 1;
            let nodes: Vec<Address> = (base..base + HOSTS_PER_RACK).map(Address).collect();
            let problem = hdfs_write_query(Address(1000 + tenant.0), &nodes, replicas, 1e6)
                .resolve()
                .unwrap();
            Sub {
                tenant,
                arrival: t,
                problem,
            }
        })
        .collect()
}

fn check_ledger<S: cloudtalk::status::StatusSource>(
    plane: &ServingPlane<S>,
) -> Result<(), TestCaseError> {
    let stats = plane.ledger_stats();
    prop_assert_eq!(stats.conflicts, 0, "ledger conflict: {:?}", stats);
    prop_assert_eq!(
        stats.retired_versions,
        0,
        "unreclaimed versions with no pins: {:?}",
        stats
    );
    let v = plane.ledger_version();
    prop_assert!(
        v.entries().windows(2).all(|w| w[0].0 .0 < w[1].0 .0),
        "ledger entries not strictly sorted at epoch {}",
        v.epoch()
    );
    Ok(())
}

type Fingerprint = (u32, u64, Result<Answer, String>);

/// Replays `subs` on a `workers`-wide plane, draining after every
/// submission and checking the ledger invariants at each step.
fn run(workers: usize, subs: &[Sub]) -> Result<(Vec<Fingerprint>, u64, u64), TestCaseError> {
    let (layout, src) = fleet();
    let cfg = ServingConfig {
        workers,
        racks_per_shard: 2,
        wave_quantum: SimDuration::from_millis(5),
        // Admission out of play: lag-based rejection is capacity
        // dependent by design, which would make acceptance sets differ
        // across worker counts (covered by the admission suite instead).
        max_virtual_lag: SimDuration::from_secs_f64(1e6),
        ..ServingConfig::default()
    };
    let mut plane = ServingPlane::new(cfg, layout, src);
    let mut fps: Vec<Fingerprint> = Vec::new();
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let drain = |plane: &mut ServingPlane<TableStatusSource>,
                     until: SimTime,
                     fps: &mut Vec<Fingerprint>|
     -> Result<(), TestCaseError> {
        for c in plane.run_until(until) {
            fps.push((
                c.tenant.0,
                c.seq,
                c.result.map_err(|e| e.to_string()),
            ));
        }
        check_ledger(plane)
    };
    for s in subs {
        match plane.submit(s.tenant, s.problem.clone(), s.arrival) {
            Ok(_) => accepted += 1,
            Err(_) => rejected += 1,
        }
        drain(&mut plane, s.arrival, &mut fps)?;
    }
    let end = subs.last().map_or(SimTime::ZERO, |s| s.arrival) + SimDuration::from_millis(20);
    drain(&mut plane, end, &mut fps)?;
    fps.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    Ok((fps, accepted, rejected))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random tenant-query schedules at 1/2/8 workers: bit-identical
    /// answers per (tenant, seq), identical admission, and a
    /// conflict-free ledger at every epoch.
    #[test]
    fn answers_identical_at_1_2_8_workers(
        seed in any::<u64>(),
        tenants in 1u32..8,
        n in 5usize..40,
    ) {
        let subs = schedule(seed, tenants, n);
        let (base, acc0, rej0) = run(1, &subs)?;
        prop_assert_eq!(base.len() as u64, acc0, "every accepted query completes");
        for workers in [2usize, 8] {
            let (other, acc, rej) = run(workers, &subs)?;
            prop_assert_eq!(acc0, acc);
            prop_assert_eq!(rej0, rej);
            prop_assert_eq!(base.len(), other.len());
            for (a, b) in base.iter().zip(&other) {
                prop_assert_eq!(
                    a, b,
                    "answer differs at {} workers for (tenant {}, seq {})",
                    workers, a.0, a.1
                );
            }
        }
    }
}

/// A fixed-seed smoke of the same property, immune to proptest config.
#[test]
fn pinned_schedule_identical_across_worker_counts() {
    let subs = schedule(0xC10D_7A1C, 5, 30);
    let (base, acc, rej) = run(1, &subs).unwrap();
    assert_eq!(acc, 30);
    assert_eq!(rej, 0);
    assert_eq!(base.len(), 30);
    for workers in [2usize, 8] {
        let (other, ..) = run(workers, &subs).unwrap();
        assert_eq!(base, other, "divergence at {workers} workers");
    }
}

/// Replays `subs` with continuous telemetry on (1-in-4 trace sampling, a
/// p99 SLO, 10 ms windows), returning the answer fingerprints plus the
/// sampled-trace identity set `(tenant, seq, trace_id)`.
fn run_with_telemetry(workers: usize, subs: &[Sub]) -> (Vec<Fingerprint>, Vec<(u32, u64, u64)>) {
    let (layout, src) = fleet();
    let cfg = ServingConfig {
        workers,
        racks_per_shard: 2,
        wave_quantum: SimDuration::from_millis(5),
        max_virtual_lag: SimDuration::from_secs_f64(1e6),
        telemetry: TelemetryConfig {
            sample_every: 4,
            window: SimDuration::from_millis(10),
            slos: vec![obs::SloSpec::p99_latency_us(25_000.0)],
            ..TelemetryConfig::enabled()
        },
        ..ServingConfig::default()
    };
    let mut plane = ServingPlane::new(cfg, layout, src);
    let mut fps: Vec<Fingerprint> = Vec::new();
    let mut sampled: Vec<(u32, u64, u64)> = Vec::new();
    let mut drain = |plane: &mut ServingPlane<TableStatusSource>, until: SimTime| {
        for c in plane.run_until(until) {
            if let Some(ctx) = c.trace {
                sampled.push((c.tenant.0, c.seq, ctx.trace_id));
            }
            fps.push((c.tenant.0, c.seq, c.result.map_err(|e| e.to_string())));
        }
    };
    for s in subs {
        let _ = plane.submit(s.tenant, s.problem.clone(), s.arrival);
        drain(&mut plane, s.arrival);
    }
    let end = subs.last().map_or(SimTime::ZERO, |s| s.arrival) + SimDuration::from_millis(20);
    drain(&mut plane, end);
    assert!(
        plane.telemetry_stats().windows > 0 || plane.telemetry_dump().is_some(),
        "telemetry plane produced no windows"
    );
    fps.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    sampled.sort_unstable();
    (fps, sampled)
}

/// ISSUE 10: the sampled trace-id set is a pure function of
/// `(seed, tenant, seq)` — identical at 1, 2 and 8 workers — and turning
/// telemetry on changes no answer bit.
#[test]
fn sampled_trace_set_identical_across_worker_counts() {
    let subs = schedule(0x7E1E_3715, 6, 40);
    let (plain, ..) = run(1, &subs).unwrap();
    let (base_fps, base_sampled) = run_with_telemetry(1, &subs);
    assert_eq!(
        plain, base_fps,
        "telemetry on/off answers must be bit-identical"
    );
    assert!(
        !base_sampled.is_empty() && base_sampled.len() < base_fps.len(),
        "1-in-4 sampling keeps a non-empty strict subset: {} of {}",
        base_sampled.len(),
        base_fps.len()
    );
    assert!(
        base_sampled.iter().all(|&(.., id)| id != 0),
        "trace ids are non-zero by construction"
    );
    for workers in [2usize, 8] {
        let (fps, sampled) = run_with_telemetry(workers, &subs);
        assert_eq!(base_fps, fps, "answer divergence at {workers} workers");
        assert_eq!(
            base_sampled, sampled,
            "sampled trace-id set divergence at {workers} workers"
        );
    }
}
