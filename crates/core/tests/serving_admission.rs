//! Admission-control suite: a saturated 2-worker plane must refuse load
//! with typed errors, keep its queues bounded, and keep reporting data
//! quality honestly while shedding.
//!
//! * **Typed rejections**: queue-full and overload rejections are
//!   `ServerError::Overloaded { retry_after }` with a positive hint —
//!   never a panic, never a silent drop.
//! * **Bounded queue memory**: whatever the offered load, the pending
//!   queue never exceeds `tenants × tenant_queue_depth` entries.
//! * **Degradation-rung contract**: load shedding flips
//!   `Provenance::shed` and the backend, but the rung and freshness
//!   keep reporting the *data* quality — stale status can never hide
//!   behind a shed wave, and shedding can never masquerade as staleness.

use cloudtalk::aggregate::FleetLayout;
use cloudtalk::server::{Backend, DegradationRung, ServerError};
use cloudtalk::serving::{ServingConfig, ServingPlane, TenantId};
use cloudtalk::status::TableStatusSource;
use cloudtalk_lang::builder::hdfs_write_query;
use cloudtalk_lang::problem::{Address, Problem};
use desim::{SimDuration, SimTime};
use estimator::HostState;

const RACKS: u32 = 4;
const HOSTS_PER_RACK: u32 = 4;

/// All 16 hosts idle and reporting.
fn healthy_fleet() -> (FleetLayout, TableStatusSource) {
    let addrs: Vec<Address> = (1..=RACKS * HOSTS_PER_RACK).map(Address).collect();
    let layout = FleetLayout::uniform(&addrs, HOSTS_PER_RACK as usize);
    let mut src = TableStatusSource::new();
    for &a in &addrs {
        src.set(a, HostState::gbps_idle());
    }
    (layout, src)
}

/// Same layout, but half the hosts never answer status polls.
fn half_dark_fleet() -> (FleetLayout, TableStatusSource) {
    let addrs: Vec<Address> = (1..=RACKS * HOSTS_PER_RACK).map(Address).collect();
    let layout = FleetLayout::uniform(&addrs, HOSTS_PER_RACK as usize);
    let mut src = TableStatusSource::new();
    for &a in &addrs {
        if a.0 % 2 == 0 {
            src.set(a, HostState::gbps_idle());
        }
    }
    (layout, src)
}

fn rack_query(rack: u32) -> Problem {
    let base = rack * HOSTS_PER_RACK + 1;
    let nodes: Vec<Address> = (base..base + HOSTS_PER_RACK).map(Address).collect();
    hdfs_write_query(Address(100 + rack), &nodes, 2, 1e6)
        .resolve()
        .unwrap()
}

#[test]
fn saturating_two_workers_rejects_with_typed_overloaded() {
    let (layout, src) = healthy_fleet();
    let depth = 4usize;
    let tenants = 3u32;
    let mut plane = ServingPlane::new(
        ServingConfig {
            workers: 2,
            tenant_queue_depth: depth,
            racks_per_shard: 2,
            ..ServingConfig::default()
        },
        layout,
        src,
    );
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    // Everyone floods the same wave far beyond their queue bound.
    for t in 0..tenants {
        for _ in 0..(3 * depth) {
            match plane.submit(TenantId(t), rack_query(t), SimTime::ZERO) {
                Ok(_) => accepted += 1,
                Err(ServerError::Overloaded { retry_after }) => {
                    assert!(retry_after > SimDuration::ZERO, "useless backpressure hint");
                    rejected += 1;
                }
                Err(e) => panic!("expected Overloaded, got {e}"),
            }
            // Bounded queue memory at every instant.
            assert!(plane.pending_len() <= depth * tenants as usize);
        }
    }
    assert_eq!(accepted, u64::from(tenants) * depth as u64);
    assert_eq!(rejected, u64::from(tenants) * (2 * depth) as u64);
    let done = plane.run_until(SimTime::from_secs_f64(0.05));
    assert_eq!(done.len() as u64, accepted, "every accepted query completes");
    let m = plane.metrics();
    assert_eq!(m.counter_named("serving.accepted"), Some(accepted));
    assert_eq!(m.counter_named("serving.rejected_queue_full"), Some(rejected));
}

#[test]
fn virtual_lag_backpressure_kicks_in_and_recovers() {
    let (layout, src) = healthy_fleet();
    let mut plane = ServingPlane::new(
        ServingConfig {
            workers: 2,
            tenant_queue_depth: 1024,
            // Each query "costs" 10 ms against a 5 ms wave: two workers
            // fall behind immediately once a wave carries > 1 query.
            service_time: SimDuration::from_millis(10),
            max_virtual_lag: SimDuration::from_millis(15),
            racks_per_shard: 2,
            ..ServingConfig::default()
        },
        layout,
        src,
    );
    // Wave 0: 8 queries → 4 per worker → 40 ms of virtual work against
    // a 5 ms quantum. Lag after the wave: 35 ms > the 15 ms bound.
    for t in 0..8u32 {
        plane.submit(TenantId(t % 4), rack_query(t % 4), SimTime::ZERO).unwrap();
    }
    plane.run_until(SimTime::ZERO + SimDuration::from_millis(5));
    assert!(plane.virtual_lag() > SimDuration::from_millis(15));
    let err = plane
        .submit(TenantId(0), rack_query(0), SimTime::ZERO + SimDuration::from_millis(5))
        .unwrap_err();
    match err {
        ServerError::Overloaded { retry_after } => {
            assert_eq!(retry_after, plane.virtual_lag(), "hint = current lag");
        }
        e => panic!("expected Overloaded, got {e}"),
    }
    // Idle waves drain the lag; admission recovers.
    plane.run_until(SimTime::from_secs_f64(0.1));
    assert_eq!(plane.virtual_lag(), SimDuration::ZERO);
    plane
        .submit(TenantId(0), rack_query(0), SimTime::from_secs_f64(0.1))
        .unwrap();
    assert!(plane.metrics().counter_named("serving.rejected_overload") >= Some(1));
}

#[test]
fn shed_waves_keep_reporting_data_quality() {
    // Healthy data + shedding: rung stays Full, shed is flagged.
    let (layout, src) = healthy_fleet();
    let mut plane = ServingPlane::new(
        ServingConfig {
            workers: 2,
            shed_wave_backlog: 0,
            racks_per_shard: 2,
            ..ServingConfig::default()
        },
        layout,
        src,
    );
    plane.submit(TenantId(0), rack_query(0), SimTime::ZERO).unwrap();
    let done = plane.run_until(SimTime::from_secs_f64(0.01));
    let a = done[0].result.as_ref().unwrap();
    assert!(a.provenance.shed);
    assert_eq!(a.provenance.backend, Backend::Heuristic);
    assert_eq!(a.rung, DegradationRung::Full, "shedding is not staleness");

    // Half-dark data + shedding: the rung degrades and says so — no
    // silent staleness behind the shed flag.
    let (layout, src) = half_dark_fleet();
    let mut plane = ServingPlane::new(
        ServingConfig {
            workers: 2,
            shed_wave_backlog: 0,
            racks_per_shard: 2,
            ..ServingConfig::default()
        },
        layout,
        src,
    );
    plane.submit(TenantId(0), rack_query(0), SimTime::ZERO).unwrap();
    let done = plane.run_until(SimTime::from_secs_f64(0.01));
    let a = done[0].result.as_ref().unwrap();
    assert!(a.provenance.shed);
    assert!(
        a.rung != DegradationRung::Full,
        "half the fleet dark must degrade the rung, got {:?}",
        a.rung
    );
    assert!(a.freshness < 0.7, "freshness must reflect the dark hosts");
    assert!(a.missing > 0, "missing hosts must be reported");
}

#[test]
fn accepted_queries_meet_rung_contract_under_saturation() {
    // Saturate a 2-worker plane with fresh data: every *accepted* query
    // still answers on the Full rung (shed or not) — backpressure must
    // never be paid for with silently degraded data.
    let (layout, src) = healthy_fleet();
    let mut plane = ServingPlane::new(
        ServingConfig {
            workers: 2,
            tenant_queue_depth: 8,
            shed_wave_backlog: 4,
            racks_per_shard: 2,
            ..ServingConfig::default()
        },
        layout,
        src,
    );
    let mut accepted = 0u64;
    for wave in 0..5u64 {
        let at = SimTime::ZERO + SimDuration::from_millis(5 * wave);
        for t in 0..4u32 {
            for _ in 0..3 {
                if plane.submit(TenantId(t), rack_query(t), at).is_ok() {
                    accepted += 1;
                }
            }
        }
    }
    let done = plane.run_until(SimTime::from_secs_f64(0.1));
    assert_eq!(done.len() as u64, accepted);
    let mut shed_seen = false;
    for c in &done {
        let a = c.result.as_ref().unwrap();
        assert_eq!(a.rung, DegradationRung::Full, "fresh data stays Full");
        assert_eq!(a.provenance.shed, c.shed);
        shed_seen |= c.shed;
    }
    assert!(shed_seen, "12-query waves over a backlog of 4 must shed");
}
