//! Byte-size and rate literal suffixes.
//!
//! The paper writes sizes as `256M` and rates in bytes per second; suffixes
//! are the usual binary multipliers (K = 2^10, M = 2^20, G = 2^30, T = 2^40).

/// Returns the multiplier for a size-suffix character, if it is one.
pub fn suffix_multiplier(c: char) -> Option<f64> {
    match c {
        'K' | 'k' => Some(1024.0),
        'M' | 'm' => Some(1024.0 * 1024.0),
        'G' | 'g' => Some(1024.0 * 1024.0 * 1024.0),
        'T' => Some(1024.0 * 1024.0 * 1024.0 * 1024.0),
        _ => None,
    }
}

/// Formats a byte count with the largest suffix that divides it exactly,
/// falling back to a plain number.
///
/// # Examples
///
/// ```
/// assert_eq!(cloudtalk_lang::units::format_bytes(256.0 * 1024.0 * 1024.0), "256M");
/// assert_eq!(cloudtalk_lang::units::format_bytes(1000.0), "1000");
/// ```
pub fn format_bytes(value: f64) -> String {
    const SUFFIXES: [(f64, char); 4] = [
        (1024.0 * 1024.0 * 1024.0 * 1024.0, 'T'),
        (1024.0 * 1024.0 * 1024.0, 'G'),
        (1024.0 * 1024.0, 'M'),
        (1024.0, 'K'),
    ];
    if value.fract() == 0.0 && value != 0.0 {
        for (mult, suffix) in SUFFIXES {
            let scaled = value / mult;
            if scaled.fract() == 0.0 && scaled >= 1.0 {
                return format!("{}{}", scaled, suffix);
            }
        }
    }
    format_number(value)
}

/// Formats a number exactly, without scientific notation for typical values.
pub fn format_number(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Convenience constants for common sizes, in bytes.
pub mod sizes {
    /// One kibibyte.
    pub const KB: f64 = 1024.0;
    /// One mebibyte.
    pub const MB: f64 = 1024.0 * 1024.0;
    /// One gibibyte.
    pub const GB: f64 = 1024.0 * 1024.0 * 1024.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffixes_scale_binary() {
        assert_eq!(suffix_multiplier('K'), Some(1024.0));
        assert_eq!(suffix_multiplier('m'), Some(1048576.0));
        assert_eq!(suffix_multiplier('G'), Some(1073741824.0));
        assert_eq!(suffix_multiplier('x'), None);
    }

    #[test]
    fn format_picks_largest_exact_suffix() {
        assert_eq!(format_bytes(sizes::GB), "1G");
        assert_eq!(format_bytes(512.0 * sizes::MB), "512M");
        // 1536 is not an integral multiple of any suffix, so it stays plain.
        assert_eq!(format_bytes(1536.0), "1536");
        assert_eq!(format_bytes(0.0), "0");
    }

    #[test]
    fn format_number_avoids_exponents() {
        assert_eq!(format_number(100000000.0), "100000000");
        assert_eq!(format_number(0.5), "0.5");
    }

    #[test]
    fn round_trip_via_multiplier() {
        let bytes = 256.0 * sizes::MB;
        let formatted = format_bytes(bytes);
        assert_eq!(formatted, "256M");
        let (num, suffix) = formatted.split_at(formatted.len() - 1);
        let parsed: f64 = num.parse().unwrap();
        assert_eq!(
            parsed * suffix_multiplier(suffix.chars().next().unwrap()).unwrap(),
            bytes
        );
    }
}
