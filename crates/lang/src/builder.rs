//! Programmatic query construction.
//!
//! CloudTalk-enabled applications (HDFS, MapReduce, web search) build their
//! queries through [`QueryBuilder`] rather than string formatting: the
//! builder emits a well-formed AST, can render canonical query text (what
//! would go over the wire to the real CloudTalk server), and resolves
//! directly into a [`Problem`].
//!
//! # Examples
//!
//! The Figure 2 replica-read query:
//!
//! ```
//! use cloudtalk_lang::builder::QueryBuilder;
//! use cloudtalk_lang::{Address, units::sizes::MB};
//!
//! let mut b = QueryBuilder::new();
//! let a = b.variable("A", [Address(0x0A000002), Address(0x0A000003)]);
//! b.flow("f1").from_var(a).to_addr(Address(0x0A000001)).size(256.0 * MB);
//! let problem = b.resolve().unwrap();
//! assert_eq!(problem.vars.len(), 1);
//! let text = b.text();
//! assert!(text.contains("f1 A -> 10.0.0.1 size 256M"));
//! ```

use crate::ast::{
    Attr, AttrKind, EndpointAst, Expr, FlowDef, FlowRef, Ident, Query, RefAttr, Statement,
    VarDecl,
};
use crate::error::{LangError, Span};
use crate::printer::print_query;
use crate::problem::{Address, Problem};
use crate::validate::{resolve, MapResolver};

/// Handle to a declared variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VarHandle(usize);

/// Handle to a declared flow (usable in attribute references).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlowHandle(usize);

/// Builds CloudTalk queries programmatically.
#[derive(Default)]
pub struct QueryBuilder {
    decls: Vec<VarDecl>,
    var_names: Vec<String>,
    flows: Vec<FlowDef>,
    next_flow_id: usize,
}

impl QueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a variable over a pool of candidate addresses.
    pub fn variable(
        &mut self,
        name: impl Into<String>,
        pool: impl IntoIterator<Item = Address>,
    ) -> VarHandle {
        self.variable_group([name.into()], pool)
            .into_iter()
            .next()
            .expect("one name yields one handle")
    }

    /// Declares several variables sharing one pool (`B = C = D = (…)`),
    /// bound to distinct values by default.
    pub fn variable_group(
        &mut self,
        names: impl IntoIterator<Item = String>,
        pool: impl IntoIterator<Item = Address>,
    ) -> Vec<VarHandle> {
        let names: Vec<String> = names.into_iter().collect();
        let values: Vec<EndpointAst> = pool
            .into_iter()
            .map(|a| EndpointAst::Addr {
                addr: a.0,
                span: Span::DUMMY,
            })
            .collect();
        let mut handles = Vec::with_capacity(names.len());
        for name in &names {
            handles.push(VarHandle(self.var_names.len()));
            self.var_names.push(name.clone());
        }
        self.decls.push(VarDecl {
            names: names.into_iter().map(Ident::synthetic).collect(),
            values,
            span: Span::DUMMY,
        });
        handles
    }

    /// Starts defining a named flow; finish it with the [`FlowBuilder`]
    /// endpoint and attribute methods.
    pub fn flow(&mut self, name: impl Into<String>) -> FlowBuilder<'_> {
        let id = self.next_flow_id;
        self.next_flow_id += 1;
        self.flows.push(FlowDef {
            name: Some(Ident::synthetic(name.into())),
            src: EndpointAst::Addr {
                addr: 0,
                span: Span::DUMMY,
            },
            dst: EndpointAst::Addr {
                addr: 0,
                span: Span::DUMMY,
            },
            attrs: Vec::new(),
            span: Span::DUMMY,
        });
        FlowBuilder { builder: self, id }
    }

    /// Returns the handle for a previously defined flow by name.
    pub fn flow_handle(&self, name: &str) -> Option<FlowHandle> {
        self.flows
            .iter()
            .position(|f| f.name.as_ref().is_some_and(|n| n.text == name))
            .map(FlowHandle)
    }

    /// Assembles the AST query.
    pub fn build(&self) -> Query {
        let mut statements: Vec<Statement> = Vec::new();
        for decl in &self.decls {
            statements.push(Statement::VarDecl(decl.clone()));
        }
        for flow in &self.flows {
            statements.push(Statement::Flow(flow.clone()));
        }
        Query { statements }
    }

    /// Renders the canonical query text (the wire representation).
    pub fn text(&self) -> String {
        print_query(&self.build())
    }

    /// Resolves the built query into a problem instance.
    ///
    /// Builder queries only use literal addresses, so no name resolution
    /// is needed; errors indicate a structurally invalid query.
    pub fn resolve(&self) -> Result<Problem, LangError> {
        resolve(&self.build(), &MapResolver::new())
    }
}

/// Fluent construction of a single flow.
pub struct FlowBuilder<'a> {
    builder: &'a mut QueryBuilder,
    id: usize,
}

impl FlowBuilder<'_> {
    fn def(&mut self) -> &mut FlowDef {
        &mut self.builder.flows[self.id]
    }

    fn var_endpoint(&self, var: VarHandle) -> EndpointAst {
        EndpointAst::Name(Ident::synthetic(self.builder.var_names[var.0].clone()))
    }

    /// Sets the source to a fixed address.
    pub fn from_addr(mut self, addr: Address) -> Self {
        self.def().src = EndpointAst::Addr {
            addr: addr.0,
            span: Span::DUMMY,
        };
        self
    }

    /// Sets the source to a variable.
    pub fn from_var(mut self, var: VarHandle) -> Self {
        let ep = self.var_endpoint(var);
        self.def().src = ep;
        self
    }

    /// Sets the source to the local disk.
    pub fn from_disk(mut self) -> Self {
        self.def().src = EndpointAst::Disk { span: Span::DUMMY };
        self
    }

    /// Sets the source to "unknown" (`0.0.0.0`) — traffic from outside.
    pub fn from_unknown(mut self) -> Self {
        self.def().src = EndpointAst::Addr {
            addr: 0,
            span: Span::DUMMY,
        };
        self
    }

    /// Sets the destination to a fixed address.
    pub fn to_addr(mut self, addr: Address) -> Self {
        self.def().dst = EndpointAst::Addr {
            addr: addr.0,
            span: Span::DUMMY,
        };
        self
    }

    /// Sets the destination to a variable.
    pub fn to_var(mut self, var: VarHandle) -> Self {
        let ep = self.var_endpoint(var);
        self.def().dst = ep;
        self
    }

    /// Sets the destination to the local disk.
    pub fn to_disk(mut self) -> Self {
        self.def().dst = EndpointAst::Disk { span: Span::DUMMY };
        self
    }

    /// Sets `size` to a byte literal.
    pub fn size(self, bytes: f64) -> Self {
        self.attr(AttrKind::Size, Expr::literal(bytes))
    }

    /// Sets `size` to reference another flow's size (`size sz(f)`).
    pub fn size_of(self, flow: FlowHandle) -> Self {
        let expr = self.ref_expr(RefAttr::Size, flow);
        self.attr(AttrKind::Size, expr)
    }

    /// Sets `rate` to a bytes-per-second literal.
    pub fn rate(self, bps: f64) -> Self {
        self.attr(AttrKind::Rate, Expr::literal(bps))
    }

    /// Couples this flow's rate to another flow's (`rate r(f)`).
    pub fn rate_of(self, flow: FlowHandle) -> Self {
        let expr = self.ref_expr(RefAttr::Rate, flow);
        self.attr(AttrKind::Rate, expr)
    }

    /// Chains on another flow's delivered bytes (`transfer t(f)`).
    pub fn transfer_of(self, flow: FlowHandle) -> Self {
        let expr = self.ref_expr(RefAttr::Transferred, flow);
        self.attr(AttrKind::Transfer, expr)
    }

    /// Sets `start` (seconds from now).
    pub fn start(self, secs: f64) -> Self {
        self.attr(AttrKind::Start, Expr::literal(secs))
    }

    /// Sets `end` (seconds from now).
    pub fn end(self, secs: f64) -> Self {
        self.attr(AttrKind::End, Expr::literal(secs))
    }

    /// Sets an arbitrary attribute expression.
    pub fn attr(mut self, kind: AttrKind, value: Expr) -> Self {
        debug_assert!(
            self.def().attrs.iter().all(|a| a.kind != kind),
            "attribute {kind:?} set twice"
        );
        self.def().attrs.push(Attr {
            kind,
            value,
            span: Span::DUMMY,
        });
        self
    }

    /// Returns this flow's handle for later references.
    pub fn handle(&self) -> FlowHandle {
        FlowHandle(self.id)
    }

    fn ref_expr(&self, attr: RefAttr, flow: FlowHandle) -> Expr {
        let name = self.builder.flows[flow.0]
            .name
            .as_ref()
            .expect("builder flows are always named")
            .text
            .clone();
        Expr::Ref {
            attr,
            flow: FlowRef::Named(Ident::synthetic(name)),
            span: Span::DUMMY,
        }
    }
}

/// Builds the daisy-chain HDFS write query of §5.3 for `replicas` replicas:
/// client → r1 → disk, r1 → r2 → disk, … with coupled rates and
/// store-and-forward `transfer` chaining.
pub fn hdfs_write_query(
    client: Address,
    datanodes: &[Address],
    replicas: usize,
    block_bytes: f64,
) -> QueryBuilder {
    let mut b = QueryBuilder::new();
    let names: Vec<String> = (1..=replicas).map(|i| format!("r{i}")).collect();
    let vars = b.variable_group(names, datanodes.iter().copied());

    let mut prev_net: Option<FlowHandle> = None;
    let mut prev_disk: Option<FlowHandle> = None;
    for (i, &var) in vars.iter().enumerate() {
        let net_name = format!("f{}", 2 * i + 1);
        let disk_name = format!("f{}", 2 * i + 2);
        // Network hop into replica i.
        let mut net = b.flow(&net_name);
        net = if i == 0 {
            net.from_addr(client)
        } else {
            net.from_var(vars[i - 1])
        };
        net = net.to_var(var).size(block_bytes);
        if let Some(upstream_disk) = prev_disk {
            net = net.transfer_of(upstream_disk);
        }
        let net_handle = net.handle();
        // Local store at replica i, rate-coupled with its network hop.
        let disk = b
            .flow(&disk_name)
            .from_var(var)
            .to_disk()
            .size(block_bytes)
            .rate_of(net_handle);
        let disk_handle = disk.handle();
        // Couple the network hop's rate back to the disk write.
        let net_def = &mut b.flows[net_handle.0];
        net_def.attrs.push(Attr {
            kind: AttrKind::Rate,
            value: Expr::Ref {
                attr: RefAttr::Rate,
                flow: FlowRef::Named(Ident::synthetic(disk_name)),
                span: Span::DUMMY,
            },
            span: Span::DUMMY,
        });
        prev_net = Some(net_handle);
        prev_disk = Some(disk_handle);
    }
    let _ = prev_net;
    b
}

/// Builds the §5.3 HDFS replica-read query: `src = (replica…); f1 src -> reader size block`.
pub fn hdfs_read_query(reader: Address, replicas: &[Address], block_bytes: f64) -> QueryBuilder {
    let mut b = QueryBuilder::new();
    let src = b.variable("src", replicas.iter().copied());
    b.flow("f1").from_var(src).to_addr(reader).size(block_bytes);
    b
}

/// Builds the §5.3 reduce-placement query: `m` variables over `nodes`, each
/// receiving `bytes` from an unknown source and spilling to disk.
pub fn reduce_placement_query(nodes: &[Address], m: usize, bytes: f64) -> QueryBuilder {
    let mut b = QueryBuilder::new();
    let names: Vec<String> = (1..=m).map(|i| format!("x{i}")).collect();
    let vars = b.variable_group(names, nodes.iter().copied());
    for (i, &var) in vars.iter().enumerate() {
        let net_name = format!("f{}", 2 * i + 1);
        let disk_name = format!("f{}", 2 * i + 2);
        let net = b
            .flow(&net_name)
            .from_unknown()
            .to_var(var)
            .size(bytes);
        let net_handle = net.handle();
        let disk = b
            .flow(&disk_name)
            .from_var(var)
            .to_disk()
            .size(bytes)
            .rate_of(net_handle);
        let disk_handle = disk.handle();
        let net_def = &mut b.flows[net_handle.0];
        net_def.attrs.push(Attr {
            kind: AttrKind::Rate,
            value: Expr::Ref {
                attr: RefAttr::Rate,
                flow: FlowRef::Named(Ident::synthetic(disk_name)),
                span: Span::DUMMY,
            },
            span: Span::DUMMY,
        });
        let _ = disk_handle;
    }
    b
}

/// Builds the §5.3 map-placement query: one variable over nodes holding the
/// split, reading from disk and streaming to the worker.
pub fn map_placement_query(worker: Address, holders: &[Address], bytes: f64) -> QueryBuilder {
    let mut b = QueryBuilder::new();
    let x = b.variable("X", holders.iter().copied());
    let read = b.flow("f1").from_disk().to_var(x).size(bytes);
    let read_handle = read.handle();
    let send = b
        .flow("f2")
        .from_var(x)
        .to_addr(worker)
        .size_of(read_handle)
        .rate_of(read_handle);
    let send_handle = send.handle();
    let read_def = &mut b.flows[read_handle.0];
    read_def.attrs.push(Attr {
        kind: AttrKind::Rate,
        value: Expr::Ref {
            attr: RefAttr::Rate,
            flow: FlowRef::Named(Ident::synthetic("f2".to_string())),
            span: Span::DUMMY,
        },
        span: Span::DUMMY,
    });
    let _ = send_handle;
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use crate::units::sizes::MB;

    #[test]
    fn builder_text_parses_back() {
        let mut b = QueryBuilder::new();
        let a = b.variable("A", [Address(0x0A000002), Address(0x0A000003)]);
        b.flow("f1")
            .from_var(a)
            .to_addr(Address(0x0A000001))
            .size(256.0 * MB);
        let text = b.text();
        let reparsed = parse_query(&text).unwrap();
        assert_eq!(reparsed.flows().count(), 1);
        assert_eq!(reparsed.var_decls().count(), 1);
    }

    #[test]
    fn hdfs_write_query_matches_paper_shape() {
        let nodes: Vec<Address> = (2..7).map(Address).collect();
        let b = hdfs_write_query(Address(1), &nodes, 3, 256.0 * MB);
        let p = b.resolve().unwrap();
        assert_eq!(p.vars.len(), 3);
        assert_eq!(p.flows.len(), 6);
        // All three variables share one pool and must be distinct.
        assert!(p.vars.iter().all(|v| v.pool == 0));
        assert!(p.distinct);
        // Flows alternate network / disk.
        for (i, f) in p.flows.iter().enumerate() {
            assert_eq!(f.touches_disk(), i % 2 == 1, "flow {i}");
        }
        // The wire text is valid CloudTalk.
        assert!(parse_query(&b.text()).is_ok());
    }

    #[test]
    fn reduce_query_uses_unknown_sources() {
        let nodes: Vec<Address> = (1..11).map(Address).collect();
        let b = reduce_placement_query(&nodes, 5, 1e9);
        let p = b.resolve().unwrap();
        assert_eq!(p.vars.len(), 5);
        assert_eq!(p.flows.len(), 10);
        assert!(p
            .flows
            .iter()
            .step_by(2)
            .all(|f| f.src == crate::problem::Endpoint::Unknown));
    }

    #[test]
    fn map_query_couples_disk_and_net() {
        let holders: Vec<Address> = vec![Address(5), Address(6), Address(7)];
        let b = map_placement_query(Address(9), &holders, 128.0 * MB);
        let p = b.resolve().unwrap();
        assert_eq!(p.flows.len(), 2);
        assert!(p.flows[0].touches_disk());
        assert!(p.flows[1].is_network());
        let text = b.text();
        assert!(text.contains("disk -> X"), "{text}");
        assert!(text.contains("rate r(f2)"), "{text}");
    }

    #[test]
    fn read_query_round_trips_through_text() {
        let b = hdfs_read_query(Address(1), &[Address(2), Address(3), Address(4)], 256.0 * MB);
        let p1 = b.resolve().unwrap();
        let p2 = crate::validate::resolve(
            &parse_query(&b.text()).unwrap(),
            &crate::validate::MapResolver::new(),
        )
        .unwrap();
        assert_eq!(p1, p2);
    }
}
