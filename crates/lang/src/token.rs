//! Token definitions for the CloudTalk language.

use std::fmt;

use crate::error::Span;

/// A lexical token with its source span.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// What kind of token this is, with any payload.
    pub kind: TokenKind,
    /// Where it appears in the source.
    pub span: Span,
}

/// The kinds of token the lexer produces.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// An identifier: flow names, variable names, symbolic hosts, keywords.
    Ident(String),
    /// A numeric literal, already scaled by any size suffix (`256M` → bytes).
    Number(f64),
    /// A dotted-quad IPv4 address literal.
    Ipv4(u32),
    /// `->`
    Arrow,
    /// `=`
    Equals,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;` or a newline — both terminate a statement.
    StatementEnd,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Number(n) => format!("number `{n}`"),
            TokenKind::Ipv4(addr) => {
                format!("address `{}`", crate::problem::Address(*addr))
            }
            TokenKind::Arrow => "`->`".to_string(),
            TokenKind::Equals => "`=`".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::StatementEnd => "end of statement".to_string(),
            TokenKind::Plus => "`+`".to_string(),
            TokenKind::Minus => "`-`".to_string(),
            TokenKind::Star => "`*`".to_string(),
            TokenKind::Slash => "`/`".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}
