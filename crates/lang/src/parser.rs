//! Recursive-descent parser for the CloudTalk language.
//!
//! The grammar (paper Table 1):
//!
//! ```text
//! query    := { statement (";" | NEWLINE) }
//! statement:= var_decl | flow
//! var_decl := IDENT { "=" IDENT } "=" "(" endpoint { endpoint } ")"
//! flow     := [ IDENT ] endpoint "->" endpoint { attr }
//! endpoint := IPV4 | "disk" | IDENT
//! attr     := ("start"|"end"|"size"|"rate"|"transfer") expr
//! expr     := term { ("+"|"-") term }
//! term     := factor { ("*"|"/") factor }
//! factor   := NUMBER | REF | "(" expr ")"
//! REF      := ("st"|"e"|"sz"|"r"|"t") "(" (IDENT | INT) ")"
//! ```
//!
//! A leading identifier is a flow *name* when the token after it starts
//! another endpoint; it is the *source endpoint* when followed by `->`.

use crate::ast::{
    Attr, AttrKind, BinOp, EndpointAst, Expr, FlowDef, FlowRef, Ident, Query, RefAttr, Statement,
    VarDecl,
};
use crate::error::{LangError, Span};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses a complete CloudTalk query.
///
/// # Examples
///
/// ```
/// let q = cloudtalk_lang::parse_query("A = (10.0.0.2 10.0.0.3); f1 A -> 10.0.0.1 size 256M").unwrap();
/// assert_eq!(q.statements.len(), 2);
/// ```
pub fn parse_query(source: &str) -> Result<Query, LangError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.parse()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn parse(mut self) -> Result<Query, LangError> {
        let mut statements = Vec::new();
        loop {
            self.skip_statement_ends();
            if self.peek_kind() == &TokenKind::Eof {
                break;
            }
            statements.push(self.parse_statement()?);
            match self.peek_kind() {
                TokenKind::StatementEnd | TokenKind::Eof => {}
                other => {
                    return Err(LangError::new(
                        format!("expected end of statement, found {}", other.describe()),
                        self.peek_span(),
                    ));
                }
            }
        }
        Ok(Query { statements })
    }

    fn parse_statement(&mut self) -> Result<Statement, LangError> {
        // Lookahead to classify: IDENT "=" … is a variable declaration.
        if matches!(self.peek_kind(), TokenKind::Ident(_))
            && self.peek_kind_at(1) == &TokenKind::Equals
        {
            return Ok(Statement::VarDecl(self.parse_var_decl()?));
        }
        Ok(Statement::Flow(self.parse_flow()?))
    }

    fn parse_var_decl(&mut self) -> Result<VarDecl, LangError> {
        let start_span = self.peek_span();
        let mut names = vec![self.expect_ident()?];
        self.expect(TokenKind::Equals)?;
        // Chained declarations: B = C = D = ( … ).
        while matches!(self.peek_kind(), TokenKind::Ident(_))
            && self.peek_kind_at(1) == &TokenKind::Equals
        {
            names.push(self.expect_ident()?);
            self.expect(TokenKind::Equals)?;
        }
        self.expect(TokenKind::LParen)?;
        let mut values = Vec::new();
        while self.peek_kind() != &TokenKind::RParen {
            if self.peek_kind() == &TokenKind::Eof {
                return Err(LangError::new(
                    "unclosed value pool: expected `)`",
                    self.peek_span(),
                ));
            }
            values.push(self.parse_endpoint()?);
        }
        let close = self.advance(); // the `)`
        if values.is_empty() {
            return Err(LangError::new(
                "variable value pool must not be empty",
                start_span.merge(close.span),
            ));
        }
        Ok(VarDecl {
            names,
            values,
            span: start_span.merge(close.span),
        })
    }

    fn parse_flow(&mut self) -> Result<FlowDef, LangError> {
        let start_span = self.peek_span();
        // Optional flow name: an identifier NOT followed by `->` (if it were,
        // that identifier is itself the source endpoint).
        let name = if matches!(self.peek_kind(), TokenKind::Ident(_))
            && self.peek_kind_at(1) != &TokenKind::Arrow
        {
            Some(self.expect_ident()?)
        } else {
            None
        };
        let src = self.parse_endpoint()?;
        self.expect(TokenKind::Arrow)?;
        let dst = self.parse_endpoint()?;

        let mut attrs: Vec<Attr> = Vec::new();
        while let TokenKind::Ident(word) = self.peek_kind() {
            let Some(kind) = AttrKind::from_keyword(word) else {
                return Err(LangError::new(
                    format!("expected flow attribute (start/end/size/rate/transfer), found `{word}`"),
                    self.peek_span(),
                ));
            };
            let kw = self.advance();
            if attrs.iter().any(|a| a.kind == kind) {
                return Err(LangError::new(
                    format!("duplicate attribute `{}`", kind.keyword()),
                    kw.span,
                ));
            }
            let value = self.parse_expr()?;
            attrs.push(Attr {
                kind,
                value,
                span: kw.span,
            });
        }

        let end_span = attrs
            .last()
            .map(|a| a.value.span())
            .unwrap_or_else(|| dst.span());
        Ok(FlowDef {
            name,
            src,
            dst,
            attrs,
            span: start_span.merge(end_span),
        })
    }

    fn parse_endpoint(&mut self) -> Result<EndpointAst, LangError> {
        let tok = self.advance();
        match tok.kind {
            TokenKind::Ipv4(addr) => Ok(EndpointAst::Addr {
                addr,
                span: tok.span,
            }),
            TokenKind::Ident(text) if text == "disk" => {
                Ok(EndpointAst::Disk { span: tok.span })
            }
            TokenKind::Ident(text) => Ok(EndpointAst::Name(Ident {
                text,
                span: tok.span,
            })),
            other => Err(LangError::new(
                format!(
                    "expected endpoint (address, variable, or `disk`), found {}",
                    other.describe()
                ),
                tok.span,
            )),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_term()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.parse_factor()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_factor()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> Result<Expr, LangError> {
        match self.peek_kind().clone() {
            TokenKind::Number(value) => {
                let tok = self.advance();
                Ok(Expr::Literal {
                    value,
                    span: tok.span,
                })
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(word) => {
                let Some(attr) = RefAttr::from_keyword(&word) else {
                    return Err(LangError::new(
                        format!("unknown reference `{word}` (expected st/e/sz/r/t)"),
                        self.peek_span(),
                    ));
                };
                let head = self.advance();
                self.expect(TokenKind::LParen)?;
                let flow = match self.peek_kind().clone() {
                    TokenKind::Number(v) => {
                        let tok = self.advance();
                        if v.fract() != 0.0 || v < 1.0 {
                            return Err(LangError::new(
                                "flow index must be a positive integer",
                                tok.span,
                            ));
                        }
                        FlowRef::Index {
                            index: v as usize,
                            span: tok.span,
                        }
                    }
                    _ => FlowRef::Named(self.expect_ident()?),
                };
                let close = self.expect(TokenKind::RParen)?;
                Ok(Expr::Ref {
                    attr,
                    flow,
                    span: head.span.merge(close.span),
                })
            }
            other => Err(LangError::new(
                format!("expected value, found {}", other.describe()),
                self.peek_span(),
            )),
        }
    }

    // --- token plumbing -------------------------------------------------

    fn peek_kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_kind_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn advance(&mut self) -> Token {
        let tok = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, LangError> {
        if self.peek_kind() == &kind {
            Ok(self.advance())
        } else {
            Err(LangError::new(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek_kind().describe()
                ),
                self.peek_span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<Ident, LangError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(text) => {
                let tok = self.advance();
                Ok(Ident {
                    text,
                    span: tok.span,
                })
            }
            other => Err(LangError::new(
                format!("expected identifier, found {}", other.describe()),
                self.peek_span(),
            )),
        }
    }

    fn skip_statement_ends(&mut self) {
        while self.peek_kind() == &TokenKind::StatementEnd {
            self.advance();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure2_query() {
        // The replica-read query from Figure 2 of the paper.
        let q = parse_query("A = (10.0.0.2 10.0.0.3)\nf1 A -> 10.0.0.1 size 256M").unwrap();
        assert_eq!(q.var_decls().count(), 1);
        let flow = q.flows().next().unwrap();
        assert_eq!(flow.name.as_ref().unwrap().text, "f1");
        assert!(matches!(flow.src, EndpointAst::Name(_)));
        assert!(matches!(flow.dst, EndpointAst::Addr { .. }));
        let size = flow.attr(AttrKind::Size).unwrap();
        assert!(matches!(
            size,
            Expr::Literal { value, .. } if *value == 256.0 * 1024.0 * 1024.0
        ));
    }

    #[test]
    fn parses_chained_var_decl() {
        let q = parse_query("B = C = D = (s1 s2 s3 s4)").unwrap();
        let decl = q.var_decls().next().unwrap();
        assert_eq!(
            decl.names.iter().map(|n| n.text.as_str()).collect::<Vec<_>>(),
            vec!["B", "C", "D"]
        );
        assert_eq!(decl.values.len(), 4);
    }

    #[test]
    fn parses_coupled_rate_refs() {
        // The disk-read + network-send pattern from §4.1.
        let q = parse_query(
            "A = (vm1 vm2 vm3)\n\
             f1 disk -> A size 100M rate r(f2)\n\
             f2 A -> 10.0.0.1 size sz(f1) rate r(f1)",
        )
        .unwrap();
        let flows: Vec<_> = q.flows().collect();
        assert_eq!(flows.len(), 2);
        assert!(matches!(flows[0].src, EndpointAst::Disk { .. }));
        let rate = flows[0].attr(AttrKind::Rate).unwrap();
        assert!(matches!(
            rate,
            Expr::Ref { attr: RefAttr::Rate, flow: FlowRef::Named(flow), .. } if flow.text == "f2"
        ));
        let size = flows[1].attr(AttrKind::Size).unwrap();
        assert!(matches!(
            size,
            Expr::Ref { attr: RefAttr::Size, flow: FlowRef::Named(flow), .. } if flow.text == "f1"
        ));
    }

    #[test]
    fn parses_hdfs_write_query() {
        // The six-flow daisy-chain write query from §5.3.
        let q = parse_query(
            "r1 = r2 = r3 = (d1 d2 d3 d4 d5)\n\
             f1 client -> r1 size 256M rate r(f2)\n\
             f2 r1 -> disk size 256M rate r(f1)\n\
             f3 r1 -> r2 size 256M rate r(f4) transfer t(f2)\n\
             f4 r2 -> disk size 256M rate r(f3)\n\
             f5 r2 -> r3 size 256M rate r(f6) transfer t(f4)\n\
             f6 r3 -> disk size 256M rate r(f5)",
        )
        .unwrap();
        assert_eq!(q.flows().count(), 6);
        assert_eq!(q.var_decls().next().unwrap().names.len(), 3);
    }

    #[test]
    fn parses_unknown_source() {
        let q = parse_query("f1 0.0.0.0 -> x1 size 1G rate r(f2)").unwrap();
        let flow = q.flows().next().unwrap();
        assert!(matches!(flow.src, EndpointAst::Addr { addr: 0, .. }));
    }

    #[test]
    fn parses_unnamed_flow() {
        let q = parse_query("A -> 10.0.0.1 size 5K").unwrap();
        let flow = q.flows().next().unwrap();
        assert!(flow.name.is_none());
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let q = parse_query("f a -> b size 1 + 2 * 3").unwrap();
        let size = q.flows().next().unwrap().attr(AttrKind::Size).unwrap();
        // Must parse as 1 + (2 * 3).
        let Expr::Binary { op: BinOp::Add, rhs, .. } = size else {
            panic!("expected top-level Add, got {size:?}");
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_parenthesised_exprs() {
        let q = parse_query("f a -> b size (1 + 2) * 3").unwrap();
        let size = q.flows().next().unwrap().attr(AttrKind::Size).unwrap();
        assert!(matches!(size, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let err = parse_query("f a -> b size 1 size 2").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn rejects_missing_arrow() {
        assert!(parse_query("f1 a b size 1").is_err());
    }

    #[test]
    fn rejects_empty_pool() {
        let err = parse_query("A = ()").unwrap_err();
        assert!(err.message.contains("empty"));
    }

    #[test]
    fn rejects_unclosed_pool() {
        let err = parse_query("A = (a b").unwrap_err();
        assert!(err.message.contains("unclosed"));
    }

    #[test]
    fn parses_index_references() {
        let q = parse_query("f a -> b size 5\ng c -> d size sz(1) rate r(2)").unwrap();
        let flows: Vec<_> = q.flows().collect();
        let sz = flows[1].attr(AttrKind::Size).unwrap();
        assert!(matches!(
            sz,
            Expr::Ref { attr: RefAttr::Size, flow: FlowRef::Index { index: 1, .. }, .. }
        ));
    }

    #[test]
    fn rejects_fractional_index_reference() {
        let err = parse_query("f a -> b size sz(1.5)").unwrap_err();
        assert!(err.message.contains("positive integer"));
    }

    #[test]
    fn rejects_unknown_ref_head() {
        let err = parse_query("f a -> b size foo(f1)").unwrap_err();
        assert!(err.message.contains("unknown reference"));
    }

    #[test]
    fn rejects_garbage_after_statement() {
        assert!(parse_query("A = (a b) extra").is_err());
    }

    #[test]
    fn empty_query_is_ok() {
        assert!(parse_query("").unwrap().statements.is_empty());
        assert!(parse_query("\n\n;;\n").unwrap().statements.is_empty());
    }

    #[test]
    fn disk_keyword_is_endpoint_not_name() {
        let q = parse_query("disk -> a size 1").unwrap();
        let flow = q.flows().next().unwrap();
        assert!(flow.name.is_none());
        assert!(matches!(flow.src, EndpointAst::Disk { .. }));
    }

    #[test]
    fn named_flow_with_address_source() {
        let q = parse_query("f9 10.1.2.3 -> a size 1").unwrap();
        let flow = q.flows().next().unwrap();
        assert_eq!(flow.name.as_ref().unwrap().text, "f9");
    }
}
