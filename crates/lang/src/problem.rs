//! The resolved *problem instance*: what the CloudTalk server evaluates.
//!
//! Validation ([`crate::validate`]) turns a parsed [`crate::ast::Query`]
//! into a [`Problem`]: variables with concrete candidate pools, flows with
//! resolved endpoints, and attribute expressions whose flow references are
//! indices instead of names.

use std::fmt;

use crate::ast::{AttrKind, BinOp, RefAttr};

/// An opaque server address (rendered as a dotted quad, like the IPv4
/// addresses the real system uses).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Address(pub u32);

impl Address {
    /// The "unknown source" sentinel the paper writes as `0.0.0.0`.
    pub const UNKNOWN: Address = Address(0);
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.0;
        write!(
            f,
            "{}.{}.{}.{}",
            (a >> 24) & 0xFF,
            (a >> 16) & 0xFF,
            (a >> 8) & 0xFF,
            a & 0xFF
        )
    }
}

/// Index of a variable within a [`Problem`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub usize);

/// Index of a flow within a [`Problem`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub usize);

/// A candidate value a variable may be bound to.
///
/// Pools are usually addresses, but Table 1 allows `disk` as a value too
/// (e.g. "read from any of these servers *or* from the local disk").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// A concrete server.
    Addr(Address),
    /// The local disk of the flow's fixed peer endpoint.
    Disk,
}

/// A resolved variable: a name and its candidate pool.
#[derive(Clone, PartialEq, Debug)]
pub struct Variable {
    /// The variable's name as written in the query.
    pub name: String,
    /// Candidate values, in declaration order.
    pub candidates: Vec<Value>,
    /// Pool id: variables declared together (`B = C = (…)`) share one and
    /// are bound to distinct values by default (paper §4.1).
    pub pool: usize,
}

/// A resolved flow endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Endpoint {
    /// A fixed server.
    Addr(Address),
    /// The local disk of the flow's other endpoint.
    Disk,
    /// "Unknown source" (`0.0.0.0`): traffic arrives from outside the query.
    Unknown,
    /// A free variable to be bound by the evaluator.
    Var(VarId),
}

impl Endpoint {
    /// Returns the variable id if this endpoint is a variable.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Endpoint::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the fixed address if this endpoint is one.
    pub fn as_addr(self) -> Option<Address> {
        match self {
            Endpoint::Addr(a) => Some(a),
            _ => None,
        }
    }
}

/// A resolved attribute expression.
#[derive(Clone, PartialEq, Debug)]
pub enum ExprR {
    /// A numeric constant.
    Literal(f64),
    /// A reference to another flow's attribute.
    Ref(RefAttr, FlowId),
    /// A binary operation.
    Binary(BinOp, Box<ExprR>, Box<ExprR>),
}

impl ExprR {
    /// Evaluates the expression given a resolver for flow-attribute refs.
    pub fn eval(&self, lookup: &impl Fn(RefAttr, FlowId) -> f64) -> f64 {
        match self {
            ExprR::Literal(v) => *v,
            ExprR::Ref(attr, flow) => lookup(*attr, *flow),
            ExprR::Binary(op, lhs, rhs) => op.apply(lhs.eval(lookup), rhs.eval(lookup)),
        }
    }

    /// Returns the constant value if the expression contains no references.
    pub fn as_const(&self) -> Option<f64> {
        match self {
            ExprR::Literal(v) => Some(*v),
            ExprR::Ref(..) => None,
            ExprR::Binary(op, lhs, rhs) => Some(op.apply(lhs.as_const()?, rhs.as_const()?)),
        }
    }

    /// Visits every flow reference in the expression.
    pub fn for_each_ref(&self, f: &mut impl FnMut(RefAttr, FlowId)) {
        match self {
            ExprR::Literal(_) => {}
            ExprR::Ref(attr, flow) => f(*attr, *flow),
            ExprR::Binary(_, lhs, rhs) => {
                lhs.for_each_ref(f);
                rhs.for_each_ref(f);
            }
        }
    }
}

/// A resolved flow.
#[derive(Clone, PartialEq, Debug)]
pub struct Flow {
    /// The flow's name, if it had one.
    pub name: Option<String>,
    /// Data source.
    pub src: Endpoint,
    /// Data destination.
    pub dst: Endpoint,
    /// Attribute expressions, indexed by [`AttrKind`] order
    /// (start, end, size, rate, transfer).
    attrs: [Option<ExprR>; 5],
}

impl Flow {
    /// Creates a flow with no attributes.
    pub fn new(name: Option<String>, src: Endpoint, dst: Endpoint) -> Self {
        Flow {
            name,
            src,
            dst,
            attrs: Default::default(),
        }
    }

    /// Sets an attribute expression.
    pub fn set_attr(&mut self, kind: AttrKind, expr: ExprR) {
        self.attrs[attr_index(kind)] = Some(expr);
    }

    /// Returns an attribute expression, if set.
    pub fn attr(&self, kind: AttrKind) -> Option<&ExprR> {
        self.attrs[attr_index(kind)].as_ref()
    }

    /// Returns `true` if either endpoint is the local disk.
    pub fn touches_disk(&self) -> bool {
        self.src == Endpoint::Disk || self.dst == Endpoint::Disk
    }

    /// Returns `true` if this is a network transfer (neither endpoint disk).
    pub fn is_network(&self) -> bool {
        !self.touches_disk()
    }
}

fn attr_index(kind: AttrKind) -> usize {
    match kind {
        AttrKind::Start => 0,
        AttrKind::End => 1,
        AttrKind::Size => 2,
        AttrKind::Rate => 3,
        AttrKind::Transfer => 4,
    }
}

/// A variable assignment: one [`Value`] per variable, indexed by [`VarId`].
pub type Binding = Vec<Value>;

/// A flow endpoint after applying a binding: no variables remain.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BoundEndpoint {
    /// A concrete server.
    Host(Address),
    /// The local disk of the flow's other endpoint.
    Disk,
    /// Traffic from outside the problem.
    Unknown,
}

impl Endpoint {
    /// Applies `binding`, replacing variables by their bound values.
    pub fn bound(self, binding: &Binding) -> BoundEndpoint {
        match self {
            Endpoint::Addr(a) => BoundEndpoint::Host(a),
            Endpoint::Disk => BoundEndpoint::Disk,
            Endpoint::Unknown => BoundEndpoint::Unknown,
            Endpoint::Var(v) => match binding[v.0] {
                Value::Addr(a) => BoundEndpoint::Host(a),
                Value::Disk => BoundEndpoint::Disk,
            },
        }
    }
}

/// A fully resolved problem instance.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Problem {
    /// Free variables, in declaration order.
    pub vars: Vec<Variable>,
    /// Flows, in definition order.
    pub flows: Vec<Flow>,
    /// Whether same-pool variables must bind to distinct values
    /// (the paper's default; can be overridden by the client).
    pub distinct: bool,
}

impl Problem {
    /// Looks up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name == name).map(VarId)
    }

    /// Looks up a flow by name.
    pub fn flow_by_name(&self, name: &str) -> Option<FlowId> {
        self.flows
            .iter()
            .position(|f| f.name.as_deref() == Some(name))
            .map(FlowId)
    }

    /// All distinct addresses mentioned anywhere in the problem (fixed
    /// endpoints and candidate pools) — the set of status servers the
    /// CloudTalk server may need to interrogate.
    pub fn mentioned_addresses(&self) -> Vec<Address> {
        let mut addrs: Vec<Address> = Vec::new();
        let mut push = |a: Address| {
            if a != Address::UNKNOWN && !addrs.contains(&a) {
                addrs.push(a);
            }
        };
        for var in &self.vars {
            for value in &var.candidates {
                if let Value::Addr(a) = value {
                    push(*a);
                }
            }
        }
        for flow in &self.flows {
            for ep in [flow.src, flow.dst] {
                if let Endpoint::Addr(a) = ep {
                    push(a);
                }
            }
        }
        addrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_displays_dotted_quad() {
        assert_eq!(Address(0x0A000102).to_string(), "10.0.1.2");
        assert_eq!(Address::UNKNOWN.to_string(), "0.0.0.0");
    }

    #[test]
    fn expr_eval_and_const_fold() {
        let e = ExprR::Binary(
            BinOp::Mul,
            Box::new(ExprR::Literal(3.0)),
            Box::new(ExprR::Binary(
                BinOp::Add,
                Box::new(ExprR::Literal(1.0)),
                Box::new(ExprR::Literal(1.0)),
            )),
        );
        assert_eq!(e.as_const(), Some(6.0));
        assert_eq!(e.eval(&|_, _| unreachable!()), 6.0);

        let with_ref = ExprR::Binary(
            BinOp::Add,
            Box::new(ExprR::Literal(1.0)),
            Box::new(ExprR::Ref(RefAttr::Rate, FlowId(0))),
        );
        assert_eq!(with_ref.as_const(), None);
        assert_eq!(with_ref.eval(&|_, _| 9.0), 10.0);
    }

    #[test]
    fn flow_attr_set_get() {
        let mut f = Flow::new(None, Endpoint::Disk, Endpoint::Var(VarId(0)));
        assert!(f.touches_disk());
        assert!(!f.is_network());
        f.set_attr(AttrKind::Size, ExprR::Literal(100.0));
        assert_eq!(f.attr(AttrKind::Size), Some(&ExprR::Literal(100.0)));
        assert_eq!(f.attr(AttrKind::Rate), None);
    }

    #[test]
    fn mentioned_addresses_dedup_and_skip_unknown() {
        let mut p = Problem {
            vars: vec![Variable {
                name: "X".into(),
                candidates: vec![Value::Addr(Address(1)), Value::Addr(Address(2)), Value::Disk],
                pool: 0,
            }],
            flows: vec![],
            distinct: true,
        };
        p.flows.push(Flow::new(
            None,
            Endpoint::Unknown,
            Endpoint::Addr(Address(1)),
        ));
        let addrs = p.mentioned_addresses();
        assert_eq!(addrs, vec![Address(1), Address(2)]);
    }
}
