//! Canonical pretty-printing of queries.
//!
//! `parse_query(print(q))` reproduces `q` up to spans, which the round-trip
//! property tests rely on.

use std::fmt::Write as _;

use crate::ast::{
    AttrKind, BinOp, EndpointAst, Expr, FlowDef, Query, Statement, VarDecl,
};
use crate::problem::Address;
use crate::units::{format_bytes, format_number};

/// Renders a query in canonical form, one statement per line.
pub fn print_query(query: &Query) -> String {
    let mut out = String::new();
    for (i, stmt) in query.statements.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match stmt {
            Statement::VarDecl(decl) => print_var_decl(&mut out, decl),
            Statement::Flow(flow) => print_flow(&mut out, flow),
        }
    }
    out
}

fn print_var_decl(out: &mut String, decl: &VarDecl) {
    for name in &decl.names {
        let _ = write!(out, "{} = ", name.text);
    }
    out.push('(');
    for (i, value) in decl.values.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        print_endpoint(out, value);
    }
    out.push(')');
}

fn print_flow(out: &mut String, flow: &FlowDef) {
    if let Some(name) = &flow.name {
        let _ = write!(out, "{} ", name.text);
    }
    print_endpoint(out, &flow.src);
    out.push_str(" -> ");
    print_endpoint(out, &flow.dst);
    for kind in AttrKind::ALL {
        if let Some(expr) = flow.attr(kind) {
            let _ = write!(out, " {} ", kind.keyword());
            print_expr(out, expr, 0, kind == AttrKind::Size);
        }
    }
}

fn print_endpoint(out: &mut String, ep: &EndpointAst) {
    match ep {
        EndpointAst::Addr { addr, .. } => {
            let _ = write!(out, "{}", Address(*addr));
        }
        EndpointAst::Disk { .. } => out.push_str("disk"),
        EndpointAst::Name(ident) => out.push_str(&ident.text),
    }
}

/// Precedence levels: 0 = additive context, 1 = multiplicative context.
fn print_expr(out: &mut String, expr: &Expr, parent_prec: u8, as_bytes: bool) {
    match expr {
        Expr::Literal { value, .. } => {
            if as_bytes {
                out.push_str(&format_bytes(*value));
            } else {
                out.push_str(&format_number(*value));
            }
        }
        Expr::Ref { attr, flow, .. } => {
            let _ = write!(out, "{}({})", attr.keyword(), flow.display());
        }
        Expr::Binary { op, lhs, rhs } => {
            let my_prec = match op {
                BinOp::Add | BinOp::Sub => 0,
                BinOp::Mul | BinOp::Div => 1,
            };
            let needs_parens = my_prec < parent_prec;
            if needs_parens {
                out.push('(');
            }
            print_expr(out, lhs, my_prec, as_bytes);
            let _ = write!(out, " {} ", op.symbol());
            // Right operand needs one level more to preserve left associativity
            // of `-` and `/` through the round trip.
            print_expr(out, rhs, my_prec + 1, as_bytes);
            if needs_parens {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn round_trip(src: &str) -> String {
        print_query(&parse_query(src).unwrap())
    }

    #[test]
    fn prints_figure2_query() {
        let printed = round_trip("A = (10.0.0.2 10.0.0.3); f1 A -> 10.0.0.1 size 256M");
        assert_eq!(
            printed,
            "A = (10.0.0.2 10.0.0.3)\nf1 A -> 10.0.0.1 size 256M"
        );
    }

    #[test]
    fn reparse_is_identity_on_examples() {
        let sources = [
            "B = C = D = (s1 s2 s3)",
            "f1 disk -> A size 100M rate r(f2)",
            "f2 A -> 10.0.0.1 size sz(f1) rate r(f1)",
            "f 0.0.0.0 -> x1 size 1G rate r(f2)",
            "f a -> b size 1 + 2 * 3",
            "f a -> b size (1 + 2) * 3",
            "f a -> b size 10 - 2 - 3",
            "f a -> b start 0.5 end 2.5",
        ];
        for src in sources {
            let once = parse_query(src).unwrap();
            let printed = print_query(&once);
            let twice = parse_query(&printed).unwrap();
            let reprinted = print_query(&twice);
            assert_eq!(printed, reprinted, "unstable print for {src:?}");
        }
    }

    #[test]
    fn left_associative_subtraction_survives() {
        // 10 - 2 - 3 must not reprint as 10 - (2 - 3).
        let q = parse_query("f a -> b size 10 - 2 - 3").unwrap();
        let printed = print_query(&q);
        let q2 = parse_query(&printed).unwrap();
        // Evaluate both: (10-2)-3 = 5.
        let val = |query: &crate::ast::Query| {
            let resolver = crate::validate::InterningResolver::new();
            let p = crate::validate::resolve(query, &resolver).unwrap();
            p.flows[0]
                .attr(AttrKind::Size)
                .unwrap()
                .as_const()
                .unwrap()
        };
        assert_eq!(val(&q), 5.0);
        assert_eq!(val(&q2), 5.0);
    }

    #[test]
    fn size_literals_use_suffixes() {
        let printed = round_trip("f a -> b size 268435456");
        assert!(printed.contains("size 256M"), "{printed}");
    }

    #[test]
    fn rate_literals_stay_plain() {
        let printed = round_trip("f a -> b rate 1024");
        assert!(printed.contains("rate 1024"), "{printed}");
    }
}
