//! Semantic analysis: AST → resolved [`Problem`].
//!
//! Checks performed:
//!
//! * duplicate variable names and duplicate flow names;
//! * unresolvable symbolic endpoint names;
//! * attribute references to unknown flows;
//! * `size` reference cycles (rate cycles are *allowed* — they express
//!   coupled rates, as in the paper's daisy-chain example);
//! * degenerate flows (`disk -> disk`, variable used as its own pool value).

use std::cell::RefCell;
use std::collections::HashMap;

use crate::ast::{AttrKind, EndpointAst, Expr, FlowRef, Query};
use crate::error::{LangError, Span};
use crate::problem::{Address, Endpoint, ExprR, Flow, FlowId, Problem, Value, VarId, Variable};

/// Resolves symbolic endpoint names to addresses.
pub trait Resolver {
    /// Returns the address for `name`, or `None` if unknown.
    fn resolve(&self, name: &str) -> Option<Address>;
}

/// A resolver backed by an explicit name → address map.
#[derive(Clone, Debug, Default)]
pub struct MapResolver {
    map: HashMap<String, Address>,
}

impl MapResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a mapping, returning `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, addr: Address) -> Self {
        self.map.insert(name.into(), addr);
        self
    }

    /// Adds a mapping.
    pub fn insert(&mut self, name: impl Into<String>, addr: Address) {
        self.map.insert(name.into(), addr);
    }
}

impl Resolver for MapResolver {
    fn resolve(&self, name: &str) -> Option<Address> {
        self.map.get(name).copied()
    }
}

/// A resolver that assigns a fresh address to every new name it sees.
///
/// Convenient for tests and examples where hosts are purely symbolic.
/// Addresses are allocated sequentially starting from `10.0.0.1`.
#[derive(Debug, Default)]
pub struct InterningResolver {
    inner: RefCell<(HashMap<String, Address>, u32)>,
}

impl InterningResolver {
    /// Creates an interning resolver starting at `10.0.0.1`.
    pub fn new() -> Self {
        InterningResolver {
            inner: RefCell::new((HashMap::new(), 0x0A00_0001)),
        }
    }

    /// Returns the interned table so callers can map addresses back to names.
    pub fn table(&self) -> HashMap<String, Address> {
        self.inner.borrow().0.clone()
    }
}

impl Resolver for InterningResolver {
    fn resolve(&self, name: &str) -> Option<Address> {
        let mut inner = self.inner.borrow_mut();
        if let Some(addr) = inner.0.get(name) {
            return Some(*addr);
        }
        let addr = Address(inner.1);
        inner.1 += 1;
        inner.0.insert(name.to_string(), addr);
        Some(addr)
    }
}

/// Resolves a parsed query into a problem instance.
///
/// # Examples
///
/// ```
/// use cloudtalk_lang::{parse_query, resolve, MapResolver, Address};
///
/// let q = parse_query("A = (10.0.0.2 10.0.0.3)\nf1 A -> client size 256M").unwrap();
/// let resolver = MapResolver::new().with("client", Address(0x0A000001));
/// let problem = resolve(&q, &resolver).unwrap();
/// assert_eq!(problem.vars.len(), 1);
/// assert_eq!(problem.flows.len(), 1);
/// ```
pub fn resolve(query: &Query, resolver: &impl Resolver) -> Result<Problem, LangError> {
    let mut problem = Problem {
        vars: Vec::new(),
        flows: Vec::new(),
        distinct: true,
    };
    let mut var_names: HashMap<String, VarId> = HashMap::new();

    // Pass 1: variables.
    for (pool, decl) in query.var_decls().enumerate() {
        let mut candidates = Vec::with_capacity(decl.values.len());
        for value in &decl.values {
            candidates.push(match value {
                EndpointAst::Addr { addr, span } => {
                    if *addr == 0 {
                        return Err(LangError::new(
                            "`0.0.0.0` (unknown) cannot be a candidate value",
                            *span,
                        ));
                    }
                    Value::Addr(Address(*addr))
                }
                EndpointAst::Disk { .. } => Value::Disk,
                EndpointAst::Name(ident) => {
                    let addr = resolver.resolve(&ident.text).ok_or_else(|| {
                        LangError::new(
                            format!("unknown host `{}` in value pool", ident.text),
                            ident.span,
                        )
                    })?;
                    Value::Addr(addr)
                }
            });
        }
        for name in &decl.names {
            if var_names.contains_key(&name.text) {
                return Err(LangError::new(
                    format!("variable `{}` declared twice", name.text),
                    name.span,
                ));
            }
            let id = VarId(problem.vars.len());
            var_names.insert(name.text.clone(), id);
            problem.vars.push(Variable {
                name: name.text.clone(),
                candidates: candidates.clone(),
                pool,
            });
        }
    }

    // Pass 2: flow names (so references can be forward).
    let mut flow_names: HashMap<String, FlowId> = HashMap::new();
    for (idx, flow) in query.flows().enumerate() {
        if let Some(name) = &flow.name {
            if flow_names.contains_key(&name.text) {
                return Err(LangError::new(
                    format!("flow `{}` defined twice", name.text),
                    name.span,
                ));
            }
            if var_names.contains_key(&name.text) {
                return Err(LangError::new(
                    format!("`{}` is both a variable and a flow name", name.text),
                    name.span,
                ));
            }
            flow_names.insert(name.text.clone(), FlowId(idx));
        }
    }

    // Pass 3: flows.
    for flow_def in query.flows() {
        let src = resolve_endpoint(&flow_def.src, &var_names, resolver)?;
        let dst = resolve_endpoint(&flow_def.dst, &var_names, resolver)?;
        if src == Endpoint::Disk && dst == Endpoint::Disk {
            return Err(LangError::new(
                "flow cannot have `disk` as both endpoints",
                flow_def.span,
            ));
        }
        let n_flows = query.flows().count();
        let mut flow = Flow::new(flow_def.name.as_ref().map(|n| n.text.clone()), src, dst);
        for attr in &flow_def.attrs {
            let expr = resolve_expr(&attr.value, &flow_names, n_flows)?;
            flow.set_attr(attr.kind, expr);
        }
        problem.flows.push(flow);
    }

    check_size_cycles(&problem)?;
    Ok(problem)
}

fn resolve_endpoint(
    ep: &EndpointAst,
    vars: &HashMap<String, VarId>,
    resolver: &impl Resolver,
) -> Result<Endpoint, LangError> {
    Ok(match ep {
        EndpointAst::Addr { addr: 0, .. } => Endpoint::Unknown,
        EndpointAst::Addr { addr, .. } => Endpoint::Addr(Address(*addr)),
        EndpointAst::Disk { .. } => Endpoint::Disk,
        EndpointAst::Name(ident) => {
            if let Some(var) = vars.get(&ident.text) {
                Endpoint::Var(*var)
            } else if let Some(addr) = resolver.resolve(&ident.text) {
                Endpoint::Addr(addr)
            } else {
                return Err(LangError::new(
                    format!(
                        "`{}` is neither a declared variable nor a known host",
                        ident.text
                    ),
                    ident.span,
                ));
            }
        }
    })
}

fn resolve_expr(
    expr: &Expr,
    flows: &HashMap<String, FlowId>,
    n_flows: usize,
) -> Result<ExprR, LangError> {
    Ok(match expr {
        Expr::Literal { value, .. } => ExprR::Literal(*value),
        Expr::Ref { attr, flow, span } => {
            let id = match flow {
                FlowRef::Named(ident) => *flows.get(&ident.text).ok_or_else(|| {
                    LangError::new(
                        format!("reference to unknown flow `{}`", ident.text),
                        *span,
                    )
                })?,
                FlowRef::Index { index, span } => {
                    if *index == 0 || *index > n_flows {
                        return Err(LangError::new(
                            format!(
                                "flow index {index} out of range (query has {n_flows} flows)"
                            ),
                            *span,
                        ));
                    }
                    FlowId(index - 1)
                }
            };
            ExprR::Ref(*attr, id)
        }
        Expr::Binary { op, lhs, rhs } => ExprR::Binary(
            *op,
            Box::new(resolve_expr(lhs, flows, n_flows)?),
            Box::new(resolve_expr(rhs, flows, n_flows)?),
        ),
    })
}

/// Rejects cyclic `size` references (`sz(f)` chains must be a DAG; a flow's
/// size depending on itself has no solution).
fn check_size_cycles(problem: &Problem) -> Result<(), LangError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = problem.flows.len();
    let mut marks = vec![Mark::White; n];

    fn visit(problem: &Problem, marks: &mut [Mark], idx: usize) -> Result<(), LangError> {
        marks[idx] = Mark::Grey;
        if let Some(expr) = problem.flows[idx].attr(AttrKind::Size) {
            let mut cycle: Option<usize> = None;
            expr.for_each_ref(&mut |attr, flow| {
                if attr == crate::ast::RefAttr::Size {
                    match marks[flow.0] {
                        Mark::Grey => cycle = Some(flow.0),
                        Mark::White => {
                            // Recurse below (collected first to keep closure simple).
                        }
                        Mark::Black => {}
                    }
                }
            });
            if let Some(at) = cycle {
                let name = problem.flows[at]
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("#{at}"));
                return Err(LangError::new(
                    format!("cyclic `size` reference involving flow `{name}`"),
                    Span::DUMMY,
                ));
            }
            let mut targets = Vec::new();
            expr.for_each_ref(&mut |attr, flow| {
                if attr == crate::ast::RefAttr::Size && marks[flow.0] == Mark::White {
                    targets.push(flow.0);
                }
            });
            for t in targets {
                if marks[t] == Mark::White {
                    visit(problem, marks, t)?;
                }
            }
        }
        marks[idx] = Mark::Black;
        Ok(())
    }

    for i in 0..n {
        if marks[i] == Mark::White {
            visit(problem, &mut marks, i)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn intern(src: &str) -> Result<Problem, LangError> {
        resolve(&parse_query(src).unwrap(), &InterningResolver::new())
    }

    #[test]
    fn resolves_figure2() {
        let p = intern("A = (10.0.0.2 10.0.0.3)\nf1 A -> 10.0.0.1 size 256M").unwrap();
        assert_eq!(p.vars.len(), 1);
        assert_eq!(p.vars[0].candidates.len(), 2);
        assert_eq!(p.flows[0].src, Endpoint::Var(VarId(0)));
        assert_eq!(p.flows[0].dst, Endpoint::Addr(Address(0x0A000001)));
    }

    #[test]
    fn chained_vars_share_pool() {
        let p = intern("B = C = D = (s1 s2 s3)").unwrap();
        assert_eq!(p.vars.len(), 3);
        assert!(p.vars.iter().all(|v| v.pool == 0));
        assert_eq!(p.vars[0].candidates, p.vars[2].candidates);
    }

    #[test]
    fn separate_decls_get_separate_pools() {
        let p = intern("A = (x y)\nB = (z w)").unwrap();
        assert_eq!(p.vars[0].pool, 0);
        assert_eq!(p.vars[1].pool, 1);
    }

    #[test]
    fn duplicate_variable_rejected() {
        let err = intern("A = (x y)\nA = (z)").unwrap_err();
        assert!(err.message.contains("declared twice"));
    }

    #[test]
    fn duplicate_flow_name_rejected() {
        let err = intern("f1 a -> b size 1\nf1 b -> a size 1").unwrap_err();
        assert!(err.message.contains("defined twice"));
    }

    #[test]
    fn unknown_flow_ref_rejected() {
        let err = intern("f1 a -> b size sz(f9)").unwrap_err();
        assert!(err.message.contains("unknown flow"));
    }

    #[test]
    fn index_references_resolve() {
        let p = intern("f1 a -> b size 100M\nf2 b -> c size sz(1)").unwrap();
        assert_eq!(
            p.flows[1].attr(AttrKind::Size),
            Some(&ExprR::Ref(crate::ast::RefAttr::Size, FlowId(0)))
        );
    }

    #[test]
    fn out_of_range_index_rejected() {
        let err = intern("f1 a -> b size sz(7)").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn rate_cycles_allowed() {
        // Coupled rates are the paper's idiom for pipelined transfers.
        let p = intern(
            "f1 disk -> a size 100M rate r(f2)\nf2 a -> b size sz(f1) rate r(f1)",
        );
        assert!(p.is_ok());
    }

    #[test]
    fn size_self_cycle_rejected() {
        let err = intern("f1 a -> b size sz(f2)\nf2 b -> c size sz(f1)").unwrap_err();
        assert!(err.message.contains("cyclic"));
    }

    #[test]
    fn disk_to_disk_rejected() {
        let err = intern("disk -> disk size 1").unwrap_err();
        assert!(err.message.contains("disk"));
    }

    #[test]
    fn unknown_source_resolves() {
        let p = intern("f1 0.0.0.0 -> a size 1G").unwrap();
        assert_eq!(p.flows[0].src, Endpoint::Unknown);
    }

    #[test]
    fn unknown_in_pool_rejected() {
        let err = intern("A = (0.0.0.0 10.0.0.1)").unwrap_err();
        assert!(err.message.contains("candidate"));
    }

    #[test]
    fn disk_allowed_in_pool() {
        let p = intern("A = (disk 10.0.0.1)\nf1 A -> 10.0.0.2 size 1M").unwrap();
        assert_eq!(p.vars[0].candidates[0], Value::Disk);
    }

    #[test]
    fn map_resolver_rejects_unknown_names() {
        let q = parse_query("f1 mystery -> 10.0.0.1 size 1").unwrap();
        let err = resolve(&q, &MapResolver::new()).unwrap_err();
        assert!(err.message.contains("mystery"));
    }

    #[test]
    fn variable_and_flow_name_collision_rejected() {
        let err = intern("A = (x y)\nA b -> c size 1").unwrap_err();
        assert!(err.message.contains("both a variable and a flow"));
    }

    #[test]
    fn mentioned_addresses_cover_pools_and_endpoints() {
        let p = intern("A = (10.0.0.5 10.0.0.6)\nf1 A -> 10.0.0.7 size 1").unwrap();
        let addrs = p.mentioned_addresses();
        assert_eq!(addrs.len(), 3);
    }
}
