//! The CloudTalk query language (paper §4.1, Table 1).
//!
//! A CloudTalk *query* describes a set of data flows — network transfers and
//! local-disk accesses — some of whose endpoints are free *variables* over a
//! pool of candidate servers. The cloud provider binds each variable to the
//! value that minimises task completion time.
//!
//! ```text
//! A = (vm2 vm3)
//! f1 A -> vm1 size 256M
//! ```
//!
//! This crate provides the full language pipeline:
//!
//! * [`lexer`] / [`parser`] — hand-written lexer and recursive-descent
//!   parser (the paper used flex/bison) producing a spanned [`ast::Query`].
//! * [`validate`] — semantic analysis resolving the AST into a
//!   [`problem::Problem`]: variables, flows with resolved endpoints, and
//!   checked attribute expressions (duplicate names, dangling references,
//!   size-reference cycles, …).
//! * [`builder`] — a programmatic [`builder::QueryBuilder`] used by the
//!   CloudTalk-enabled applications, guaranteeing well-formed queries.
//! * [`printer`] — canonical pretty-printing; `parse(print(q)) == q`.
//! * [`units`] — byte-size / rate literal suffixes (`256M`, `1G`).
//!
//! # Examples
//!
//! ```
//! use cloudtalk_lang::parse_query;
//!
//! let query = parse_query("A = (10.0.0.2 10.0.0.3)\nf1 A -> 10.0.0.1 size 256M").unwrap();
//! assert_eq!(query.flows().count(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod problem;
pub mod token;
pub mod units;
pub mod validate;

pub use ast::Query;
pub use error::{LangError, Span};
pub use parser::parse_query;
pub use problem::{Address, Endpoint, Problem};
pub use validate::{resolve, MapResolver, Resolver};
