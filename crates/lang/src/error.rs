//! Spans and diagnostics for the CloudTalk language.

use std::fmt;

/// A half-open byte range into the query source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// A zero-width span, used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0 };
}

/// An error produced while lexing, parsing, or validating a query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LangError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Location in the source text, when known.
    pub span: Span,
}

impl LangError {
    /// Creates an error anchored at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        LangError {
            message: message.into(),
            span,
        }
    }

    /// Renders the error with a line/column header and a caret line, e.g.:
    ///
    /// ```text
    /// error at 2:6: expected '->'
    ///   f1 A >- vm1 size 256M
    ///        ^^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let (line_no, col, line) = locate(source, self.span.start);
        let width = (self.span.end.saturating_sub(self.span.start)).max(1);
        let caret = " ".repeat(col.saturating_sub(1)) + &"^".repeat(width.min(line.len() + 1));
        format!(
            "error at {line_no}:{col}: {}\n  {line}\n  {caret}",
            self.message
        )
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (at bytes {}..{})",
            self.message, self.span.start, self.span.end
        )
    }
}

impl std::error::Error for LangError {}

/// Returns `(line_number, column, line_text)` for a byte offset (1-based).
fn locate(source: &str, offset: usize) -> (usize, usize, &str) {
    let offset = offset.min(source.len());
    let before = &source[..offset];
    let line_no = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let line_start = before.rfind('\n').map_or(0, |i| i + 1);
    let line_end = source[offset..]
        .find('\n')
        .map_or(source.len(), |i| offset + i);
    (line_no, offset - line_start + 1, &source[line_start..line_end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 5);
        let b = Span::new(10, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn render_points_at_offending_text() {
        let src = "A = (a b)\nf1 A >- vm1";
        let err = LangError::new("expected '->'", Span::new(15, 17));
        let rendered = err.render(src);
        assert!(rendered.contains("error at 2:6"), "{rendered}");
        assert!(rendered.contains("f1 A >- vm1"));
        assert!(rendered.lines().last().unwrap().contains("^^"));
    }

    #[test]
    fn locate_handles_offsets_past_end() {
        let err = LangError::new("unexpected end of input", Span::new(99, 99));
        // Must not panic.
        let _ = err.render("short");
    }
}
