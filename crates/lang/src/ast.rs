//! Abstract syntax tree for CloudTalk queries.
//!
//! The AST mirrors Table 1 of the paper: a query is a sequence of variable
//! declarations and flow definitions. Spans are kept on every node so the
//! validator can report precise diagnostics.

use crate::error::Span;

/// A parsed CloudTalk query: the representation of one *problem instance*.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Query {
    /// Statements in source order.
    pub statements: Vec<Statement>,
}

impl Query {
    /// Iterates over the variable declarations in the query.
    pub fn var_decls(&self) -> impl Iterator<Item = &VarDecl> {
        self.statements.iter().filter_map(|s| match s {
            Statement::VarDecl(d) => Some(d),
            Statement::Flow(_) => None,
        })
    }

    /// Iterates over the flow definitions in the query.
    pub fn flows(&self) -> impl Iterator<Item = &FlowDef> {
        self.statements.iter().filter_map(|s| match s {
            Statement::Flow(f) => Some(f),
            Statement::VarDecl(_) => None,
        })
    }
}

/// One statement: a variable declaration or a flow definition.
#[derive(Clone, PartialEq, Debug)]
pub enum Statement {
    /// `A = B = (v1 v2 …)` — one or more variables sharing a value pool.
    VarDecl(VarDecl),
    /// `[name] src -> dst attr…`
    Flow(FlowDef),
}

/// A (possibly chained) variable declaration.
///
/// `B = C = D = (s1 s2)` declares three variables over the same pool. By
/// default CloudTalk binds same-pool variables to *distinct* values
/// (paper §4.1).
#[derive(Clone, PartialEq, Debug)]
pub struct VarDecl {
    /// The declared variable names, in order.
    pub names: Vec<Ident>,
    /// The shared pool of candidate endpoint values.
    pub values: Vec<EndpointAst>,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// A flow definition.
#[derive(Clone, PartialEq, Debug)]
pub struct FlowDef {
    /// Optional flow name, referenced by attribute expressions (`r(f1)`).
    pub name: Option<Ident>,
    /// Data source.
    pub src: EndpointAst,
    /// Data destination.
    pub dst: EndpointAst,
    /// Attribute list (start/end/size/rate/transfer).
    pub attrs: Vec<Attr>,
    /// Source span of the whole definition.
    pub span: Span,
}

impl FlowDef {
    /// Returns the expression for `kind`, if the flow declares it.
    pub fn attr(&self, kind: AttrKind) -> Option<&Expr> {
        self.attrs.iter().find(|a| a.kind == kind).map(|a| &a.value)
    }
}

/// An identifier with its span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ident {
    /// The identifier text.
    pub text: String,
    /// Where it appears.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier with a dummy span (for synthesized ASTs).
    pub fn synthetic(text: impl Into<String>) -> Self {
        Ident {
            text: text.into(),
            span: Span::DUMMY,
        }
    }
}

/// A flow endpoint as written in the source.
#[derive(Clone, PartialEq, Debug)]
pub enum EndpointAst {
    /// A literal IPv4 address (`10.0.0.1`). `0.0.0.0` means "unknown source".
    Addr {
        /// The address as a big-endian `u32`.
        addr: u32,
        /// Source span of the literal.
        span: Span,
    },
    /// The local disk of whichever machine the flow's other endpoint is.
    Disk {
        /// Source span of the `disk` keyword.
        span: Span,
    },
    /// A name: either a declared variable or a symbolic host, resolved later.
    Name(Ident),
}

impl EndpointAst {
    /// The source span of the endpoint.
    pub fn span(&self) -> Span {
        match self {
            EndpointAst::Addr { span, .. } | EndpointAst::Disk { span } => *span,
            EndpointAst::Name(ident) => ident.span,
        }
    }
}

/// A flow attribute: `size 256M`, `rate r(f1)`, …
#[derive(Clone, PartialEq, Debug)]
pub struct Attr {
    /// Which attribute is being set.
    pub kind: AttrKind,
    /// The value expression.
    pub value: Expr,
    /// Span of the attribute keyword.
    pub span: Span,
}

/// The five flow attributes of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AttrKind {
    /// Start time, seconds relative to now.
    Start,
    /// End time, seconds relative to now.
    End,
    /// Total bytes to move.
    Size,
    /// Maximum instantaneous rate, bytes per second.
    Rate,
    /// Bytes transferred so far (used for store-and-forward chaining).
    Transfer,
}

impl AttrKind {
    /// The source keyword for this attribute.
    pub fn keyword(self) -> &'static str {
        match self {
            AttrKind::Start => "start",
            AttrKind::End => "end",
            AttrKind::Size => "size",
            AttrKind::Rate => "rate",
            AttrKind::Transfer => "transfer",
        }
    }

    /// Parses an attribute keyword.
    pub fn from_keyword(word: &str) -> Option<Self> {
        match word {
            "start" => Some(AttrKind::Start),
            "end" => Some(AttrKind::End),
            "size" => Some(AttrKind::Size),
            "rate" => Some(AttrKind::Rate),
            "transfer" | "transferred" => Some(AttrKind::Transfer),
            _ => None,
        }
    }

    /// All attribute kinds, in canonical order.
    pub const ALL: [AttrKind; 5] = [
        AttrKind::Start,
        AttrKind::End,
        AttrKind::Size,
        AttrKind::Rate,
        AttrKind::Transfer,
    ];
}

/// The referencable per-flow attributes (`REF` in Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RefAttr {
    /// `st(f)` — start time.
    Start,
    /// `e(f)` — end time.
    End,
    /// `sz(f)` — flow size.
    Size,
    /// `r(f)` — instantaneous rate.
    Rate,
    /// `t(f)` — bytes transferred so far.
    Transferred,
}

impl RefAttr {
    /// The source keyword for this reference head.
    pub fn keyword(self) -> &'static str {
        match self {
            RefAttr::Start => "st",
            RefAttr::End => "e",
            RefAttr::Size => "sz",
            RefAttr::Rate => "r",
            RefAttr::Transferred => "t",
        }
    }

    /// Parses a reference head keyword.
    pub fn from_keyword(word: &str) -> Option<Self> {
        match word {
            "st" => Some(RefAttr::Start),
            "e" => Some(RefAttr::End),
            "sz" => Some(RefAttr::Size),
            "r" => Some(RefAttr::Rate),
            "t" => Some(RefAttr::Transferred),
            _ => None,
        }
    }
}

/// How a reference names its target flow: by name (`r(f2)`) or by
/// 1-based definition index (`r(2)`) — Table 1: "references to an
/// attribute of another flow (specified by name or identifier)".
#[derive(Clone, PartialEq, Debug)]
pub enum FlowRef {
    /// A named flow.
    Named(Ident),
    /// The n-th flow definition (1-based).
    Index {
        /// 1-based flow position.
        index: usize,
        /// Source span of the number.
        span: Span,
    },
}

impl FlowRef {
    /// The source span of the reference target.
    pub fn span(&self) -> Span {
        match self {
            FlowRef::Named(ident) => ident.span,
            FlowRef::Index { span, .. } => *span,
        }
    }

    /// Human-readable form for diagnostics and printing.
    pub fn display(&self) -> String {
        match self {
            FlowRef::Named(ident) => ident.text.clone(),
            FlowRef::Index { index, .. } => index.to_string(),
        }
    }
}

/// A value expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A numeric literal (already scaled by any size suffix).
    Literal {
        /// The literal's value (bytes, seconds, or Bps by context).
        value: f64,
        /// Source span of the number.
        span: Span,
    },
    /// A reference to another flow's attribute, e.g. `r(f2)` or `r(2)`.
    Ref {
        /// Which attribute is referenced.
        attr: RefAttr,
        /// The referenced flow (by name or 1-based index).
        flow: FlowRef,
        /// Span of the whole reference.
        span: Span,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Literal { span, .. } | Expr::Ref { span, .. } => *span,
            Expr::Binary { lhs, rhs, .. } => lhs.span().merge(rhs.span()),
        }
    }

    /// Creates a literal with a dummy span.
    pub fn literal(value: f64) -> Expr {
        Expr::Literal {
            value,
            span: Span::DUMMY,
        }
    }

    /// Visits every flow reference in the expression.
    pub fn for_each_ref(&self, f: &mut impl FnMut(RefAttr, &FlowRef)) {
        match self {
            Expr::Literal { .. } => {}
            Expr::Ref { attr, flow, .. } => f(*attr, flow),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.for_each_ref(f);
                rhs.for_each_ref(f);
            }
        }
    }
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// The operator's source text.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }

    /// Applies the operator to two values.
    pub fn apply(self, lhs: f64, rhs: f64) -> f64 {
        match self {
            BinOp::Add => lhs + rhs,
            BinOp::Sub => lhs - rhs,
            BinOp::Mul => lhs * rhs,
            BinOp::Div => lhs / rhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_keyword_round_trips() {
        for kind in AttrKind::ALL {
            assert_eq!(AttrKind::from_keyword(kind.keyword()), Some(kind));
        }
        assert_eq!(AttrKind::from_keyword("bogus"), None);
    }

    #[test]
    fn ref_keyword_round_trips() {
        for attr in [
            RefAttr::Start,
            RefAttr::End,
            RefAttr::Size,
            RefAttr::Rate,
            RefAttr::Transferred,
        ] {
            assert_eq!(RefAttr::from_keyword(attr.keyword()), Some(attr));
        }
    }

    #[test]
    fn binop_applies() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinOp::Div.apply(3.0, 2.0), 1.5);
    }

    #[test]
    fn for_each_ref_walks_tree() {
        let expr = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Ref {
                attr: RefAttr::Rate,
                flow: FlowRef::Named(Ident::synthetic("f1")),
                span: Span::DUMMY,
            }),
            rhs: Box::new(Expr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(Expr::literal(2.0)),
                rhs: Box::new(Expr::Ref {
                    attr: RefAttr::Size,
                    flow: FlowRef::Named(Ident::synthetic("f2")),
                    span: Span::DUMMY,
                }),
            }),
        };
        let mut seen = Vec::new();
        expr.for_each_ref(&mut |attr, flow| seen.push((attr, flow.display())));
        assert_eq!(
            seen,
            vec![
                (RefAttr::Rate, "f1".to_string()),
                (RefAttr::Size, "f2".to_string())
            ]
        );
    }
}
