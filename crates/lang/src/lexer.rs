//! Hand-written lexer for the CloudTalk language.
//!
//! Newlines are significant (they end statements, like `;`), so the lexer
//! emits [`TokenKind::StatementEnd`] for both. Runs of blank separators are
//! collapsed by the parser.

use crate::error::{LangError, Span};
use crate::token::{Token, TokenKind};
use crate::units::suffix_multiplier;

/// Lexes a whole query into tokens (ending with a single [`TokenKind::Eof`]).
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        while let Some(&b) = self.bytes.get(self.pos) {
            let start = self.pos;
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.emit(TokenKind::StatementEnd, start);
                }
                b';' => {
                    self.pos += 1;
                    self.emit(TokenKind::StatementEnd, start);
                }
                b'#' => {
                    // Comment to end of line.
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'(' => {
                    self.pos += 1;
                    self.emit(TokenKind::LParen, start);
                }
                b')' => {
                    self.pos += 1;
                    self.emit(TokenKind::RParen, start);
                }
                b'=' => {
                    self.pos += 1;
                    self.emit(TokenKind::Equals, start);
                }
                b'+' => {
                    self.pos += 1;
                    self.emit(TokenKind::Plus, start);
                }
                b'*' => {
                    self.pos += 1;
                    self.emit(TokenKind::Star, start);
                }
                b'/' => {
                    self.pos += 1;
                    self.emit(TokenKind::Slash, start);
                }
                b'-' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'>') {
                        self.pos += 2;
                        self.emit(TokenKind::Arrow, start);
                    } else {
                        self.pos += 1;
                        self.emit(TokenKind::Minus, start);
                    }
                }
                b'>' => {
                    // The paper's text sometimes abbreviates `->` as `>`.
                    self.pos += 1;
                    self.emit(TokenKind::Arrow, start);
                }
                b'0'..=b'9' => self.lex_number()?,
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.lex_ident(),
                _ => {
                    let c = self.src[self.pos..].chars().next().unwrap_or('?');
                    return Err(LangError::new(
                        format!("unexpected character `{c}`"),
                        Span::new(start, start + c.len_utf8()),
                    ));
                }
            }
        }
        let end = self.src.len();
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            span: Span::new(end, end),
        });
        Ok(self.tokens)
    }

    fn emit(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start, self.pos),
        });
    }

    fn lex_ident(&mut self) {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        let text = self.src[start..self.pos].to_string();
        self.emit(TokenKind::Ident(text), start);
    }

    /// Lexes a number, a size-suffixed number (`256M`), or an IPv4 address.
    fn lex_number(&mut self) -> Result<(), LangError> {
        let start = self.pos;
        self.eat_digits();

        // Count dotted groups to distinguish floats from IPv4 addresses.
        let mut dots = 0;
        let mut probe = self.pos;
        while self.bytes.get(probe) == Some(&b'.')
            && self.bytes.get(probe + 1).is_some_and(u8::is_ascii_digit)
        {
            dots += 1;
            probe += 1;
            while self.bytes.get(probe).is_some_and(u8::is_ascii_digit) {
                probe += 1;
            }
        }

        if dots == 3 {
            self.pos = probe;
            let text = &self.src[start..self.pos];
            let mut addr: u32 = 0;
            for part in text.split('.') {
                let octet: u32 = part.parse().map_err(|_| {
                    LangError::new(
                        format!("invalid IPv4 address `{text}`"),
                        Span::new(start, self.pos),
                    )
                })?;
                if octet > 255 {
                    return Err(LangError::new(
                        format!("invalid IPv4 address `{text}`: octet {octet} > 255"),
                        Span::new(start, self.pos),
                    ));
                }
                addr = (addr << 8) | octet;
            }
            self.emit(TokenKind::Ipv4(addr), start);
            return Ok(());
        }

        if dots >= 1 {
            // Float: consume exactly one fractional group.
            self.pos += 1;
            self.eat_digits();
            if dots > 1 {
                // Two dotted groups (e.g. `1.2.3`) is neither float nor IPv4.
                return Err(LangError::new(
                    "malformed number (expected float or dotted-quad IPv4)",
                    Span::new(start, probe),
                ));
            }
        }

        let mut value: f64 = self.src[start..self.pos].parse().map_err(|_| {
            LangError::new("malformed number", Span::new(start, self.pos))
        })?;

        if let Some(&b) = self.bytes.get(self.pos) {
            if let Some(mult) = suffix_multiplier(b as char) {
                // Only treat it as a suffix if not followed by more ident chars
                // (so `100Mbps`-style identifiers are rejected loudly).
                let next = self.bytes.get(self.pos + 1);
                if next.is_some_and(|n| n.is_ascii_alphanumeric() || *n == b'_') {
                    return Err(LangError::new(
                        "unexpected trailing characters after size suffix",
                        Span::new(start, self.pos + 2),
                    ));
                }
                value *= mult;
                self.pos += 1;
            } else if (b as char).is_ascii_alphabetic() {
                return Err(LangError::new(
                    format!("unknown size suffix `{}`", b as char),
                    Span::new(self.pos, self.pos + 1),
                ));
            }
        }

        self.emit(TokenKind::Number(value), start);
        Ok(())
    }

    fn eat_digits(&mut self) {
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_variable_declaration() {
        let toks = kinds("A = (vm2 vm3)");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("A".into()),
                TokenKind::Equals,
                TokenKind::LParen,
                TokenKind::Ident("vm2".into()),
                TokenKind::Ident("vm3".into()),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_flow_with_size_suffix() {
        let toks = kinds("f1 A -> vm1 size 256M");
        assert!(toks.contains(&TokenKind::Arrow));
        assert!(toks.contains(&TokenKind::Number(256.0 * 1024.0 * 1024.0)));
    }

    #[test]
    fn lexes_ipv4_and_floats() {
        assert_eq!(
            kinds("10.0.0.1"),
            vec![TokenKind::Ipv4(0x0A000001), TokenKind::Eof]
        );
        assert_eq!(
            kinds("0.0.0.0"),
            vec![TokenKind::Ipv4(0), TokenKind::Eof]
        );
        assert_eq!(kinds("2.5"), vec![TokenKind::Number(2.5), TokenKind::Eof]);
    }

    #[test]
    fn rejects_bad_ipv4_octet() {
        let err = lex("10.0.0.999").unwrap_err();
        assert!(err.message.contains("999"));
    }

    #[test]
    fn semicolons_and_newlines_end_statements() {
        let toks = kinds("a;b\nc");
        let ends = toks
            .iter()
            .filter(|k| **k == TokenKind::StatementEnd)
            .count();
        assert_eq!(ends, 2);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("a # this is a comment\nb");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::StatementEnd,
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn arrow_and_operators() {
        let toks = kinds("r(f1) * 2 - 1 / 4 + 3");
        assert!(toks.contains(&TokenKind::Star));
        assert!(toks.contains(&TokenKind::Minus));
        assert!(toks.contains(&TokenKind::Slash));
        assert!(toks.contains(&TokenKind::Plus));
    }

    #[test]
    fn bare_gt_is_arrow() {
        // The paper's listings sometimes write `x1 > x2`.
        let toks = kinds("x1 > x2");
        assert_eq!(toks[1], TokenKind::Arrow);
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(lex("a @ b").is_err());
    }

    #[test]
    fn rejects_trailing_ident_after_suffix() {
        assert!(lex("100Mbps").is_err());
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("ab -> cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
        assert_eq!(toks[2].span, Span::new(6, 8));
    }
}
