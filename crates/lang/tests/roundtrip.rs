//! Property tests: printing a random well-formed query and re-parsing it
//! yields the same problem instance.

use cloudtalk_lang::ast::{
    Attr, AttrKind, BinOp, EndpointAst, Expr, FlowDef, FlowRef, Ident, Query, RefAttr, Statement,
    VarDecl,
};
use cloudtalk_lang::error::Span;
use cloudtalk_lang::printer::print_query;
use cloudtalk_lang::{parse_query, resolve, MapResolver};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = u32> {
    // Avoid 0.0.0.0 (reserved for "unknown").
    1u32..=0xFFFF
}

fn arb_literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0u64..1_000_000).prop_map(|v| Expr::literal(v as f64)),
        (1u64..1024).prop_map(|v| Expr::literal(v as f64 * 1024.0 * 1024.0)),
        (0u64..1000).prop_map(|v| Expr::literal(v as f64 / 4.0)),
    ]
}

fn arb_expr(flow_names: Vec<String>) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal(),
        (
            proptest::sample::select(vec![
                RefAttr::Start,
                RefAttr::End,
                RefAttr::Size,
                RefAttr::Rate,
                RefAttr::Transferred
            ]),
            proptest::sample::select(flow_names)
        )
            .prop_map(|(attr, flow)| Expr::Ref {
                attr,
                flow: FlowRef::Named(Ident::synthetic(flow)),
                span: Span::DUMMY
            }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            proptest::sample::select(vec![BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div]),
            inner.clone(),
            inner,
        )
            .prop_map(|(op, lhs, rhs)| Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
    })
}

prop_compose! {
    fn arb_query()(n_vars in 1usize..4, n_flows in 1usize..6)(
        pools in proptest::collection::vec(
            proptest::collection::vec(arb_addr(), 1..5), n_vars..=n_vars),
        flows in proptest::collection::vec(
            (any::<bool>(), 0usize..100, 0usize..100, proptest::collection::vec(
                (proptest::sample::select(vec![
                    AttrKind::Start, AttrKind::End, AttrKind::Size,
                    AttrKind::Rate, AttrKind::Transfer]),
                 0usize..1000), 0..4)),
            n_flows..=n_flows),
        exprs in proptest::collection::vec(
            arb_expr((0..6).map(|i| format!("f{i}")).collect()), 24..=24),
        n_vars in Just(n_vars),
    ) -> Query {
        let var_names: Vec<String> = (0..n_vars).map(|i| format!("V{i}")).collect();
        let mut statements: Vec<Statement> = Vec::new();
        for (i, pool) in pools.iter().enumerate() {
            statements.push(Statement::VarDecl(VarDecl {
                names: vec![Ident::synthetic(var_names[i].clone())],
                values: pool
                    .iter()
                    .map(|&addr| EndpointAst::Addr { addr, span: Span::DUMMY })
                    .collect(),
                span: Span::DUMMY,
            }));
        }
        let mut expr_iter = exprs.into_iter();
        for (i, (named, src_sel, dst_sel, attrs)) in flows.iter().enumerate() {
            // Choose endpoints: address, disk or variable, never disk->disk.
            let pick = |sel: usize, avoid_disk: bool| -> EndpointAst {
                match sel % 3 {
                    0 => EndpointAst::Addr { addr: (sel as u32) + 1, span: Span::DUMMY },
                    1 if !avoid_disk => EndpointAst::Disk { span: Span::DUMMY },
                    _ => EndpointAst::Name(Ident::synthetic(
                        var_names[sel % var_names.len()].clone())),
                }
            };
            let src = pick(*src_sel, false);
            let dst = pick(*dst_sel, matches!(src, EndpointAst::Disk { .. }));
            let mut seen = std::collections::HashSet::new();
            let attrs: Vec<Attr> = attrs
                .iter()
                .filter(|(kind, _)| seen.insert(*kind))
                .map(|(kind, _)| Attr {
                    kind: *kind,
                    // Size refs may cycle; keep sizes literal, others free.
                    value: if *kind == AttrKind::Size {
                        arb_literal_value(&mut expr_iter)
                    } else {
                        expr_iter.next().unwrap_or_else(|| Expr::literal(1.0))
                    },
                    span: Span::DUMMY,
                })
                .collect();
            statements.push(Statement::Flow(FlowDef {
                name: named.then(|| Ident::synthetic(format!("f{i}"))),
                src,
                dst,
                attrs,
                span: Span::DUMMY,
            }));
        }
        Query { statements }
    }
}

fn arb_literal_value(iter: &mut impl Iterator<Item = Expr>) -> Expr {
    // Strip refs out of an arbitrary expression so sizes stay acyclic.
    fn strip(e: Expr) -> Expr {
        match e {
            Expr::Ref { .. } => Expr::literal(7.0),
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op,
                lhs: Box::new(strip(*lhs)),
                rhs: Box::new(strip(*rhs)),
            },
            lit => lit,
        }
    }
    strip(iter.next().unwrap_or_else(|| Expr::literal(1.0)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse → print is a fixed point.
    #[test]
    fn print_parse_print_stable(query in arb_query()) {
        let printed = print_query(&query);
        let reparsed = match parse_query(&printed) {
            Ok(q) => q,
            // Queries referencing undefined flows are fine to *parse*;
            // only structural lex/parse failures are bugs.
            Err(e) => panic!("printed query failed to parse: {e}\n{printed}"),
        };
        let reprinted = print_query(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }

    /// If the query resolves, the round-tripped query resolves identically.
    #[test]
    fn resolution_survives_round_trip(query in arb_query()) {
        let resolver = MapResolver::new();
        let Ok(p1) = resolve(&query, &resolver) else {
            // Some generated queries reference undefined flows — skip.
            return Ok(());
        };
        let printed = print_query(&query);
        let reparsed = parse_query(&printed).unwrap();
        let p2 = resolve(&reparsed, &resolver).unwrap();
        prop_assert_eq!(p1, p2);
    }

    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_total(input in "\\PC{0,200}") {
        let _ = cloudtalk_lang::lexer::lex(&input);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total(input in "\\PC{0,200}") {
        let _ = parse_query(&input);
    }

    /// The parser never panics on "almost valid" inputs built from
    /// language fragments.
    #[test]
    fn parser_total_on_fragments(parts in proptest::collection::vec(
        proptest::sample::select(vec![
            "A", "=", "(", ")", "->", "disk", "size", "rate", "256M",
            "r(f1)", "sz(f2)", "10.0.0.1", "0.0.0.0", ";", "\n", "+", "*",
        ]), 0..30))
    {
        let input = parts.join(" ");
        let _ = parse_query(&input);
    }
}
