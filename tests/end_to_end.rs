//! Cross-crate integration tests: language → server → substrate → apps.

use cloudtalk_repro::apps::hdfs::experiment::{
    mean_secs, populate, run_copy_experiment, CopyExperiment, OpKind,
};
use cloudtalk_repro::apps::hdfs::{HdfsConfig, Policy};
use cloudtalk_repro::apps::mapreduce::{run_sort_job, MrConfig, SchedPolicy, SortJob};
use cloudtalk_repro::apps::Cluster;
use cloudtalk_repro::core::server::{CloudTalkServer, ServerConfig};
use cloudtalk_repro::core::status::NetSimStatusSource;
use cloudtalk_repro::lang::problem::{Address, Value};
use desim::rng::stream_rng;
use simnet::engine::TransferSpec;
use simnet::topology::{TopoOptions, Topology};
use simnet::traffic::iperf_mesh;
use simnet::GBPS;

const MB: f64 = 1024.0 * 1024.0;

/// The full pipeline of Figure 2: text query, live status from a fluid
/// network, answer steering away from measured load.
#[test]
fn text_query_against_live_network() {
    let topo = Topology::single_switch(4, GBPS, TopoOptions::default());
    let mut net = simnet::NetSim::new(topo);
    let hosts = net.hosts();
    // Saturate host 1's uplink with a long flow.
    net.start(TransferSpec::network(hosts[1], hosts[3], f64::INFINITY));

    // Query text uses the topology's real addresses.
    let a1 = net.topology().host(hosts[1]).addr;
    let a2 = net.topology().host(hosts[2]).addr;
    let a0 = net.topology().host(hosts[0]).addr;
    let text = format!(
        "A = ({} {})\nf1 A -> {} size 256M",
        Address(a1),
        Address(a2),
        Address(a0)
    );

    let mut server = CloudTalkServer::new(ServerConfig::default());
    let now = net.now();
    let mut source = NetSimStatusSource::new(&mut net);
    let answer = server.answer_text(&text, &mut source, now).expect("answers");
    assert_eq!(answer.binding, vec![Value::Addr(Address(a2))]);
}

/// CloudTalk-placed HDFS writes beat random placement under contention,
/// end to end (the Figure 6 effect, minimally sized).
#[test]
fn hdfs_cloudtalk_beats_vanilla_under_contention() {
    let run = |policy: Policy| {
        let topo = Topology::single_switch(14, GBPS, TopoOptions::default());
        let mut cluster = Cluster::new(topo, ServerConfig::default());
        let hosts = cluster.net.hosts();
        let cfg = HdfsConfig::default();
        let mut fs = populate(&mut cluster, &cfg, &hosts, 256.0 * MB, 21);
        // Background load on half the cluster.
        let mut rng = stream_rng(21, 9);
        iperf_mesh(&mut cluster.net, &mut rng, 0.5, &[]);
        let exp = CopyExperiment {
            active: hosts[..6].to_vec(),
            ops_per_server: 2,
            think_max: 1.0,
            file_bytes: 256.0 * MB,
            kind: OpKind::Write,
            policy,
            seed: 22,
        };
        let records = run_copy_experiment(&mut cluster, &mut fs, &exp);
        assert_eq!(records.len(), 12);
        mean_secs(&records)
    };
    let vanilla = run(Policy::Vanilla);
    let cloudtalk = run(Policy::CloudTalk);
    assert!(
        cloudtalk < vanilla,
        "CloudTalk writes ({cloudtalk:.2}s) must beat vanilla ({vanilla:.2}s)"
    );
}

/// A whole MapReduce job runs over the shared substrate with CloudTalk
/// scheduling and produces sane metrics.
#[test]
fn mapreduce_end_to_end_with_cloudtalk() {
    let topo = Topology::single_switch(6, GBPS, TopoOptions::default());
    let mut cluster = Cluster::new(topo, ServerConfig::default());
    let cfg = MrConfig {
        policy: SchedPolicy::CloudTalk,
        replicate_output: true,
        ..Default::default()
    };
    let job = SortJob {
        input_per_node: 64.0 * MB,
        n_reducers: 3,
        split_bytes: 64.0 * MB,
    };
    let r = run_sort_job(&mut cluster, &cfg, &job);
    assert!(r.finish_secs > 0.0);
    assert!(r.sync_secs >= r.finish_secs);
    assert_eq!(r.shuffle_secs.len(), 3);
    // The CloudTalk server actually answered queries along the way.
    assert!(cluster.server.queries_answered() > 0);
    assert!(cluster.server.ledger().status_bytes() > 0);
}

/// Sampling keeps the interrogation budget bounded at 300-node scale and
/// still avoids loaded servers most of the time.
#[test]
fn sampling_bounds_interrogation_at_scale() {
    let topo = Topology::ec2(301, 500.0 * simnet::MBPS, 20, TopoOptions::default());
    let mut cluster = Cluster::new(
        topo,
        ServerConfig {
            sample_budget: 19,
            ..Default::default()
        },
    );
    let hosts = cluster.net.hosts();
    let pool: Vec<Address> = hosts[1..].iter().map(|&h| cluster.addr(h)).collect();
    let q = cloudtalk_repro::lang::builder::hdfs_write_query(
        cluster.addr(hosts[0]),
        &pool,
        3,
        256.0 * MB,
    );
    let problem = q.resolve().expect("well-formed");
    let answer = cluster.ask(&problem).expect("answers");
    assert!(answer.sampled);
    assert!(answer.interrogated <= 20);
    assert_eq!(answer.binding.len(), 3);
}

/// Determinism across the whole stack: same seed, same story.
#[test]
fn whole_stack_determinism() {
    let run = || {
        let topo = Topology::single_switch(8, GBPS, TopoOptions::default());
        let mut cluster = Cluster::new(topo, ServerConfig { seed: 5, ..Default::default() });
        let hosts = cluster.net.hosts();
        let cfg = HdfsConfig::default();
        let mut fs = populate(&mut cluster, &cfg, &hosts, 256.0 * MB, 5);
        let exp = CopyExperiment {
            active: hosts[..4].to_vec(),
            ops_per_server: 2,
            think_max: 1.0,
            file_bytes: 256.0 * MB,
            kind: OpKind::Read,
            policy: Policy::CloudTalk,
            seed: 5,
        };
        run_copy_experiment(&mut cluster, &mut fs, &exp)
            .iter()
            .map(|r| (r.start.as_nanos(), r.finish.as_nanos()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
