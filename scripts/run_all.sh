#!/usr/bin/env bash
# Regenerates every table/figure harness and collects outputs under
# target/experiments/. Usage: scripts/run_all.sh [scale]
set -u
SCALE="${1:-1.0}"
OUT=target/experiments
mkdir -p "$OUT"
BINS="table2 micro_latency fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig11 fig12 ec2_validation overhead probing ablation"
for bin in $BINS; do
  echo "=== $bin (scale $SCALE) ==="
  CLOUDTALK_BENCH_SCALE="$SCALE" cargo run --quiet --release -p cloudtalk-bench --bin "$bin" \
    | tee "$OUT/$bin.txt"
  echo
done
echo "outputs in $OUT/"
