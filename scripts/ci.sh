#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order a failure is
# cheapest to report. Usage: scripts/ci.sh
set -eu
cd "$(dirname "$0")/.."

echo "=== build (release) ==="
cargo build --release --workspace

echo "=== clippy ==="
cargo clippy --workspace -- -D warnings

echo "=== tests ==="
cargo test -q --workspace

echo "=== chaos suite ==="
cargo test -q -p cloudtalk --test chaos

echo "=== benches compile ==="
cargo bench --no-run --workspace

echo "=== pktsearch smoke ==="
cargo run --release -q -p cloudtalk-bench --bin pktsearch -- --smoke

echo "=== simnet_scale smoke (incremental == oracle, bit-identical) ==="
cargo run --release -q -p cloudtalk-bench --bin simnet_scale -- --smoke

echo "ci: all green"
