#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order a failure is
# cheapest to report. Usage: scripts/ci.sh
set -eu
cd "$(dirname "$0")/.."

echo "=== build (release) ==="
cargo build --release --workspace

echo "=== clippy ==="
cargo clippy --workspace -- -D warnings

echo "=== tests ==="
cargo test -q --workspace

echo "=== chaos suite ==="
cargo test -q -p cloudtalk --test chaos

echo "=== aggregator chaos (crash / partition / straggle / crash-mid-push) ==="
cargo test -q -p cloudtalk --test agg_chaos

echo "=== aggregate delta properties (round-trip, idempotence, stale rejection) ==="
cargo test -q -p cloudtalk --test aggregate_props

echo "=== benches compile ==="
cargo bench --no-run --workspace

echo "=== delta estimator equivalence (apply/undo vs scratch, bit-identical) ==="
cargo test -q -p estimator --test delta_props

echo "=== delta search smoke (scratch and delta agree on winner + objective) ==="
cargo bench -q -p cloudtalk-bench --bench exhaustive_bench -- --delta --smoke

echo "=== pktsearch smoke ==="
cargo run --release -q -p cloudtalk-bench --bin pktsearch -- --smoke

echo "=== simnet_scale smoke (incremental == oracle, bit-identical) ==="
cargo run --release -q -p cloudtalk-bench --bin simnet_scale -- --smoke

echo "=== fleet_scale smoke (hier view exact, >=10x collector bytes, deterministic) ==="
cargo run --release -q -p cloudtalk-bench --bin fleet_scale -- --smoke

echo "=== serving determinism (bit-identical answers at 1/2/8 workers) ==="
cargo test -q -p cloudtalk --test serving_determinism

echo "=== serving admission (typed Overloaded, bounded queues, shed contract) ==="
cargo test -q -p cloudtalk --test serving_admission

echo "=== qps_storm smoke (accepts load, 0 ledger conflicts, deterministic) ==="
cargo run --release -q -p cloudtalk-bench --bin qps_storm -- --smoke

echo "=== answer-cache equivalence (cache on == off bit-identical, 0 stale hits) ==="
cargo test -q -p cloudtalk --test qcache_equiv

echo "=== canonicalisation regression (websearch memo classes/counters unchanged) ==="
cargo test -q -p cloudtalk-apps --test canon_regression

echo "=== cached storm smoke (hit rate >= 50%, bit-identical, 0 stale hits) ==="
cargo run --release -q -p cloudtalk-bench --bin qps_storm -- --similarity 0.8 --smoke

echo "=== trace smoke (chrome trace_event export parses, spans present) ==="
cargo run --release -q -p cloudtalk-bench --bin pktsearch -- --smoke --trace /tmp/ct_trace.json
python3 - <<'EOF'
import json
with open("/tmp/ct_trace.json") as f:
    trace = json.load(f)
names = {e["name"] for e in trace["traceEvents"] if e.get("ph") == "X"}
required = {"answer", "collect", "sanitise", "search", "bind"}
missing = required - names
assert not missing, f"trace missing spans: {missing} (got {names})"
print(f"trace OK: {len(trace['traceEvents'])} events, spans {sorted(names)}")
EOF

echo "=== telemetry smoke (SLO breach timeline, stitched cross-component trace) ==="
cargo run --release -q -p cloudtalk-bench --bin qps_storm -- --telemetry --smoke
python3 - <<'EOF'
import json, re
from collections import defaultdict
with open("BENCH_telemetry_trace.json") as f:
    trace = json.load(f)
lanes = defaultdict(set)
for e in trace["traceEvents"]:
    if e.get("ph") == "M" and e.get("name") == "thread_name":
        tid, _, lane = e["args"]["name"].partition("/")
        lanes[tid].add(lane)
stitched = [
    t for t, ls in lanes.items()
    if any(l.startswith("collector/shard") for l in ls)
    and "aggregator" in ls
    and any(re.fullmatch(r"worker\d+", l) for l in ls)
    and "admission" in ls
]
assert stitched, f"no stitched collector->aggregator->worker trace (lanes: {dict(lanes)})"
with open("BENCH_telemetry_slo.txt") as f:
    slo = f.read()
assert "BREACH" in slo, f"SLO timeline records no breach:\n{slo}"
with open("BENCH_telemetry_metrics.txt") as f:
    metrics = f.read()
assert "p999_us=" in metrics and "class" in metrics, "window metrics lack per-class quantiles"
print(f"telemetry OK: {len(stitched)} stitched traces across {len(lanes)} sampled, "
      f"{slo.count('BREACH')} breach events")
EOF

echo "=== obs hot paths allocation-free (trace arena + telemetry rings) ==="
cargo test -q -p obs --test trace_alloc
cargo test -q -p obs --test timeseries_alloc

echo "=== no stray prints in library crates (exporters own all output) ==="
if grep -rn "println!\|eprintln!" crates/core/src crates/simnet/src; then
    echo "error: println!/eprintln! found in library code — use obs exporters"
    exit 1
fi

echo "ci: all green"
